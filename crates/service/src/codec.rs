//! Binary codecs for the solver-state snapshot types of the lower crates:
//! [`SimplexSnapshot`] (bcast-lp), [`SessionSnapshot`] (bcast-core), and
//! [`ScheduleParts`] (bcast-sched).
//!
//! The lower crates expose their snapshots as plain public data and stay
//! codec-agnostic (the workspace's `serde` is a no-op stand-in); the
//! on-disk encoding lives here, next to the only consumer. All `f64`s
//! travel as IEEE-754 bit patterns, so a round trip is bit-exact.
//!
//! Decoders are *total* — corrupt bytes produce [`WireError`], never a
//! panic — but deliberately shallow: structural validation (index ranges,
//! length agreement, finiteness) is the job of the owning crates'
//! `restore` functions, which these decoders feed.

use crate::wire::{Reader, WireError, Writer};
use bcast_core::{CutGenOptions, CutSnapshot, NodeCutSet, ScreenSnapshot, SessionSnapshot};
use bcast_lp::{
    ConstraintOp, FactSnapshot, IncrementalStats, PricingRule, Sense, SimplexEngine,
    SimplexOptions, SimplexSnapshot, SnapshotRow, VarId,
};
use bcast_net::EdgeId;
use bcast_platform::CommModel;
use bcast_sched::{RoundedLoads, ScheduleParts, ScheduleRound, ScheduledTransfer};

// ---- small enums -------------------------------------------------------

fn put_engine(w: &mut Writer, engine: SimplexEngine) {
    w.put_u8(match engine {
        SimplexEngine::Sparse => 0,
        SimplexEngine::Dense => 1,
    });
}

fn get_engine(r: &mut Reader) -> Result<SimplexEngine, WireError> {
    match r.get_u8()? {
        0 => Ok(SimplexEngine::Sparse),
        1 => Ok(SimplexEngine::Dense),
        t => Err(WireError::BadTag(t)),
    }
}

fn put_pricing(w: &mut Writer, pricing: PricingRule) {
    w.put_u8(match pricing {
        PricingRule::Devex => 0,
        PricingRule::Dantzig => 1,
        PricingRule::SteepestEdge => 2,
    });
}

fn get_pricing(r: &mut Reader) -> Result<PricingRule, WireError> {
    match r.get_u8()? {
        0 => Ok(PricingRule::Devex),
        1 => Ok(PricingRule::Dantzig),
        2 => Ok(PricingRule::SteepestEdge),
        t => Err(WireError::BadTag(t)),
    }
}

fn put_sense(w: &mut Writer, sense: Sense) {
    w.put_u8(match sense {
        Sense::Maximize => 0,
        Sense::Minimize => 1,
    });
}

fn get_sense(r: &mut Reader) -> Result<Sense, WireError> {
    match r.get_u8()? {
        0 => Ok(Sense::Maximize),
        1 => Ok(Sense::Minimize),
        t => Err(WireError::BadTag(t)),
    }
}

fn put_op(w: &mut Writer, op: ConstraintOp) {
    w.put_u8(match op {
        ConstraintOp::Le => 0,
        ConstraintOp::Ge => 1,
        ConstraintOp::Eq => 2,
    });
}

fn get_op(r: &mut Reader) -> Result<ConstraintOp, WireError> {
    match r.get_u8()? {
        0 => Ok(ConstraintOp::Le),
        1 => Ok(ConstraintOp::Ge),
        2 => Ok(ConstraintOp::Eq),
        t => Err(WireError::BadTag(t)),
    }
}

fn put_model(w: &mut Writer, model: CommModel) {
    w.put_u8(match model {
        CommModel::OnePort => 0,
        CommModel::OnePortUnidirectional => 1,
        CommModel::MultiPort => 2,
    });
}

fn get_model(r: &mut Reader) -> Result<CommModel, WireError> {
    match r.get_u8()? {
        0 => Ok(CommModel::OnePort),
        1 => Ok(CommModel::OnePortUnidirectional),
        2 => Ok(CommModel::MultiPort),
        t => Err(WireError::BadTag(t)),
    }
}

// ---- bcast-lp: SimplexSnapshot -----------------------------------------

fn put_simplex_options(w: &mut Writer, o: &SimplexOptions) {
    w.put_f64(o.cost_tolerance);
    w.put_f64(o.pivot_tolerance);
    w.put_f64(o.feasibility_tolerance);
    w.put_usize(o.max_iterations);
    w.put_usize(o.bland_threshold);
    put_engine(w, o.engine);
    put_pricing(w, o.pricing);
    w.put_usize(o.refactor_interval);
}

fn get_simplex_options(r: &mut Reader) -> Result<SimplexOptions, WireError> {
    Ok(SimplexOptions {
        cost_tolerance: r.get_f64()?,
        pivot_tolerance: r.get_f64()?,
        feasibility_tolerance: r.get_f64()?,
        max_iterations: r.get_usize()?,
        bland_threshold: r.get_usize()?,
        engine: get_engine(r)?,
        pricing: get_pricing(r)?,
        refactor_interval: r.get_usize()?,
    })
}

fn put_snapshot_row(w: &mut Writer, row: &SnapshotRow) {
    w.put_seq(&row.terms, |w, &(var, coeff)| {
        w.put_usize(var.index());
        w.put_f64(coeff);
    });
    put_op(w, row.op);
    w.put_f64(row.rhs);
}

fn get_snapshot_row(r: &mut Reader) -> Result<SnapshotRow, WireError> {
    Ok(SnapshotRow {
        terms: r.get_seq(16, |r| Ok((VarId(r.get_usize()?), r.get_f64()?)))?,
        op: get_op(r)?,
        rhs: r.get_f64()?,
    })
}

fn put_fact(w: &mut Writer, f: &FactSnapshot) {
    put_engine(w, f.engine);
    w.put_usize(f.cols);
    w.put_seq(&f.basis, |w, &b| w.put_usize(b));
    w.put_seq(&f.allowed, |w, &a| w.put_bool(a));
    w.put_seq(&f.artificial_cols, |w, &a| w.put_usize(a));
    w.put_seq(&f.slack_col, |w, s| w.put_opt_usize(s));
    w.put_seq(&f.art_col, |w, a| w.put_opt_usize(a));
    w.put_seq(&f.row_of, |w, p| w.put_opt_usize(p));
}

fn get_fact(r: &mut Reader) -> Result<FactSnapshot, WireError> {
    Ok(FactSnapshot {
        engine: get_engine(r)?,
        cols: r.get_usize()?,
        basis: r.get_seq(8, |r| r.get_usize())?,
        allowed: r.get_seq(1, |r| r.get_bool())?,
        artificial_cols: r.get_seq(8, |r| r.get_usize())?,
        slack_col: r.get_seq(1, |r| r.get_opt_usize())?,
        art_col: r.get_seq(1, |r| r.get_opt_usize())?,
        row_of: r.get_seq(1, |r| r.get_opt_usize())?,
    })
}

fn put_incremental_stats(w: &mut Writer, s: &IncrementalStats) {
    w.put_usize(s.cold_solves);
    w.put_usize(s.warm_solves);
    w.put_usize(s.refactorizations);
    w.put_usize(s.total_pivots);
    w.put_usize(s.dual_pivots);
    w.put_usize(s.rows_added);
    w.put_usize(s.rows_deleted);
    w.put_usize(s.rows_updated);
    w.put_usize(s.cols_added);
    w.put_usize(s.cols_deleted);
}

fn get_incremental_stats(r: &mut Reader) -> Result<IncrementalStats, WireError> {
    Ok(IncrementalStats {
        cold_solves: r.get_usize()?,
        warm_solves: r.get_usize()?,
        refactorizations: r.get_usize()?,
        total_pivots: r.get_usize()?,
        dual_pivots: r.get_usize()?,
        rows_added: r.get_usize()?,
        rows_deleted: r.get_usize()?,
        rows_updated: r.get_usize()?,
        cols_added: r.get_usize()?,
        cols_deleted: r.get_usize()?,
    })
}

/// Encodes a [`SimplexSnapshot`].
pub fn put_simplex_snapshot(w: &mut Writer, s: &SimplexSnapshot) {
    put_simplex_options(w, &s.options);
    put_sense(w, s.sense);
    w.put_seq(&s.objective, |w, &c| w.put_f64(c));
    w.put_seq(&s.rows, put_snapshot_row);
    w.put_seq(&s.live, |w, &l| w.put_bool(l));
    w.put_seq(&s.cols_live, |w, &l| w.put_bool(l));
    w.put_seq(&s.groups, |w, group| {
        w.put_seq(group, |w, &p| w.put_usize(p))
    });
    w.put_seq(&s.group_ops, |w, &op| put_op(w, op));
    w.put_usize(s.base_groups);
    w.put_opt(&s.secondary, |w, sec| w.put_seq(sec, |w, &c| w.put_f64(c)));
    put_incremental_stats(w, &s.stats);
    w.put_opt(&s.fact, put_fact);
}

/// Decodes a [`SimplexSnapshot`].
pub fn get_simplex_snapshot(r: &mut Reader) -> Result<SimplexSnapshot, WireError> {
    Ok(SimplexSnapshot {
        options: get_simplex_options(r)?,
        sense: get_sense(r)?,
        objective: r.get_seq(8, |r| r.get_f64())?,
        rows: r.get_seq(17, get_snapshot_row)?,
        live: r.get_seq(1, |r| r.get_bool())?,
        cols_live: r.get_seq(1, |r| r.get_bool())?,
        groups: r.get_seq(8, |r| r.get_seq(8, |r| r.get_usize()))?,
        group_ops: r.get_seq(1, get_op)?,
        base_groups: r.get_usize()?,
        secondary: r.get_opt(|r| r.get_seq(8, |r| r.get_f64()))?,
        stats: get_incremental_stats(r)?,
        fact: r.get_opt(get_fact)?,
    })
}

// ---- bcast-core: SessionSnapshot ---------------------------------------

fn put_cut_gen_options(w: &mut Writer, o: &CutGenOptions) {
    w.put_opt_usize(&o.purge_after);
    w.put_seq(&o.seed_cuts, |w, cut| {
        w.put_seq(&cut.source_side, |w, &s| w.put_bool(s))
    });
    w.put_bool(o.warm_start);
    put_engine(w, o.lp_engine);
    put_pricing(w, o.pricing);
    w.put_bool(o.screen_separation);
    w.put_usize(o.separation_threads);
    w.put_opt_usize(&o.iteration_budget);
}

fn get_cut_gen_options(r: &mut Reader) -> Result<CutGenOptions, WireError> {
    Ok(CutGenOptions {
        purge_after: r.get_opt_usize()?,
        seed_cuts: r.get_seq(8, |r| {
            Ok(NodeCutSet {
                source_side: r.get_seq(1, |r| r.get_bool())?,
            })
        })?,
        warm_start: r.get_bool()?,
        lp_engine: get_engine(r)?,
        pricing: get_pricing(r)?,
        screen_separation: r.get_bool()?,
        separation_threads: r.get_usize()?,
        iteration_budget: r.get_opt_usize()?,
    })
}

fn put_cut(w: &mut Writer, c: &CutSnapshot) {
    w.put_seq(&c.side, |w, &s| w.put_bool(s));
    w.put_seq(&c.edges, |w, &e| w.put_u32(e));
    w.put_usize(c.non_binding_streak);
    w.put_bool(c.active);
    w.put_opt_usize(&c.row);
}

fn get_cut(r: &mut Reader) -> Result<CutSnapshot, WireError> {
    Ok(CutSnapshot {
        side: r.get_seq(1, |r| r.get_bool())?,
        edges: r.get_seq(4, |r| r.get_u32())?,
        non_binding_streak: r.get_usize()?,
        active: r.get_bool()?,
        row: r.get_opt_usize()?,
    })
}

fn put_screen(w: &mut Writer, s: &ScreenSnapshot) {
    w.put_bool(s.valid);
    w.put_f64(s.flow);
    w.put_seq(&s.support, |w, &(e, f)| {
        w.put_u32(e);
        w.put_f64(f);
    });
}

fn get_screen(r: &mut Reader) -> Result<ScreenSnapshot, WireError> {
    Ok(ScreenSnapshot {
        valid: r.get_bool()?,
        flow: r.get_f64()?,
        support: r.get_seq(12, |r| Ok((r.get_u32()?, r.get_f64()?)))?,
    })
}

/// Encodes a cut-generation [`SessionSnapshot`].
pub fn put_session_snapshot(w: &mut Writer, s: &SessionSnapshot) {
    put_cut_gen_options(w, &s.options);
    w.put_usize(s.source);
    w.put_f64(s.slice_size);
    w.put_usize(s.nodes);
    w.put_usize(s.edges);
    w.put_usize(s.tp);
    w.put_seq(&s.n_vars, |w, &v| w.put_usize(v));
    w.put_opt(&s.master, put_simplex_snapshot);
    w.put_seq(&s.port_rows, |w, &p| w.put_usize(p));
    w.put_seq(&s.port_keys, |w, &(node, out)| {
        w.put_usize(node);
        w.put_bool(out);
    });
    w.put_seq(&s.cuts, put_cut);
    w.put_usize(s.steps);
    w.put_seq(&s.screen, put_screen);
    w.put_seq(&s.stab_center, |w, &c| w.put_f64(c));
}

/// Decodes a cut-generation [`SessionSnapshot`].
pub fn get_session_snapshot(r: &mut Reader) -> Result<SessionSnapshot, WireError> {
    Ok(SessionSnapshot {
        options: get_cut_gen_options(r)?,
        source: r.get_usize()?,
        slice_size: r.get_f64()?,
        nodes: r.get_usize()?,
        edges: r.get_usize()?,
        tp: r.get_usize()?,
        n_vars: r.get_seq(8, |r| r.get_usize())?,
        master: r.get_opt(get_simplex_snapshot)?,
        port_rows: r.get_seq(8, |r| r.get_usize())?,
        port_keys: r.get_seq(9, |r| Ok((r.get_usize()?, r.get_bool()?)))?,
        cuts: r.get_seq(26, get_cut)?,
        steps: r.get_usize()?,
        screen: r.get_seq(17, get_screen)?,
        stab_center: r.get_seq(8, |r| r.get_f64())?,
    })
}

// ---- bcast-sched: ScheduleParts ----------------------------------------

fn put_transfer(w: &mut Writer, t: &ScheduledTransfer) {
    w.put_u32(t.edge.0);
    w.put_usize(t.slice);
    w.put_usize(t.round);
    w.put_usize(t.lag);
    w.put_f64(t.start);
    w.put_f64(t.finish);
}

fn get_transfer(r: &mut Reader) -> Result<ScheduledTransfer, WireError> {
    Ok(ScheduledTransfer {
        edge: EdgeId(r.get_u32()?),
        slice: r.get_usize()?,
        round: r.get_usize()?,
        lag: r.get_usize()?,
        start: r.get_f64()?,
        finish: r.get_f64()?,
    })
}

fn put_rounding(w: &mut Writer, rl: &RoundedLoads) {
    w.put_usize(rl.slices_per_period);
    w.put_seq(&rl.multiplicity, |w, &m| w.put_u32(m));
    w.put_f64(rl.ideal_period);
    w.put_f64(rl.loss_bound);
    w.put_usize(rl.repairs);
    w.put_seq(&rl.dominated, |w, &d| w.put_bool(d));
}

fn get_rounding(r: &mut Reader) -> Result<RoundedLoads, WireError> {
    Ok(RoundedLoads {
        slices_per_period: r.get_usize()?,
        multiplicity: r.get_seq(4, |r| r.get_u32())?,
        ideal_period: r.get_f64()?,
        loss_bound: r.get_f64()?,
        repairs: r.get_usize()?,
        dominated: r.get_seq(1, |r| r.get_bool())?,
    })
}

/// Encodes [`ScheduleParts`].
pub fn put_schedule_parts(w: &mut Writer, p: &ScheduleParts) {
    w.put_usize(p.source);
    put_model(w, p.model);
    w.put_f64(p.slice_size);
    w.put_f64(p.period);
    w.put_f64(p.lp_throughput);
    w.put_seq(&p.transfers, put_transfer);
    w.put_seq(&p.rounds, |w, round| {
        w.put_seq(&round.transfers, |w, &t| w.put_usize(t));
        w.put_f64(round.duration);
    });
    w.put_seq(&p.trees, |w, tree| w.put_seq(tree, |w, &e| w.put_u32(e.0)));
    w.put_seq(&p.send_busy, |w, &b| w.put_f64(b));
    w.put_seq(&p.recv_busy, |w, &b| w.put_f64(b));
    w.put_usize(p.max_lag);
    put_rounding(w, &p.rounding);
}

/// Decodes [`ScheduleParts`].
pub fn get_schedule_parts(r: &mut Reader) -> Result<ScheduleParts, WireError> {
    Ok(ScheduleParts {
        source: r.get_usize()?,
        model: get_model(r)?,
        slice_size: r.get_f64()?,
        period: r.get_f64()?,
        lp_throughput: r.get_f64()?,
        transfers: r.get_seq(44, get_transfer)?,
        rounds: r.get_seq(16, |r| {
            Ok(ScheduleRound {
                transfers: r.get_seq(8, |r| r.get_usize())?,
                duration: r.get_f64()?,
            })
        })?,
        trees: r.get_seq(8, |r| r.get_seq(4, |r| Ok(EdgeId(r.get_u32()?))))?,
        send_busy: r.get_seq(8, |r| r.get_f64())?,
        recv_busy: r.get_seq(8, |r| r.get_f64())?,
        max_lag: r.get_usize()?,
        rounding: get_rounding(r)?,
    })
}
