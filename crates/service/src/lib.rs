//! # bcast-service — crash-safe multi-session solver daemon
//!
//! A state machine that owns many named solver sessions — each a drifting
//! platform, a live warm-started cut-generation session, and the current
//! periodic broadcast schedule — and mutates them *only* through a
//! deterministic, serializable command vocabulary:
//!
//! * **Write-ahead command log** (`wal.bin`): every command is length-
//!   prefixed, checksummed, and `fsync`ed before it executes. Torn final
//!   records are detected and discarded on read; the valid prefix always
//!   survives.
//! * **Snapshots** (`snapshot.bin`): the `Snapshot` command canonicalizes
//!   every session — simplex basis, cut pool, schedule, step log — into a
//!   single checksummed file. Canonicalization rebuilds the live sessions
//!   from their own images, so a run restored from the snapshot and the
//!   never-crashed run are in the same state bit for bit.
//! * **Recovery**: restore the latest valid snapshot, replay the WAL tail.
//!   A corrupt snapshot degrades to a full replay from sequence 1 (the WAL
//!   is never pruned) — never a panic, and the recovered service still
//!   answers every query.
//! * **Fault injection**: a [`FaultPlan`] kills the service at a seeded
//!   [`KillPoint`] — before/mid/after the WAL append, before/after
//!   execution, or mid-snapshot-write — leaving exactly the artifacts a
//!   `SIGKILL` would. `tests/service_crash.rs` proves recovery from every
//!   kill point is bit-identical to never crashing.
//! * **Platform-digest cache**: sessions created on structurally identical
//!   platforms (same topology, same cost bits) seed their cut pools from
//!   the first session's binding cuts.
//!
//! No serialization framework is involved: the wire format is a small
//! hand-rolled little-endian codec ([`wire`]) with checksums and
//! allocation guards, so corrupt bytes fail decoding cleanly instead of
//! panicking or over-allocating.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod command;
pub mod error;
pub mod fault;
pub mod service;
pub mod session;
pub mod snapshot;
pub mod wal;
pub mod wire;

pub use command::{Command, PlatformFamily, SessionSpec};
pub use error::ServiceError;
pub use fault::{flip_byte, truncate_file, FaultPlan, KillPoint};
pub use service::{Outcome, RecoveryReport, Service};
pub use session::{ScheduleStats, Session, SessionImage, StepStats};
pub use snapshot::ServiceImage;
pub use wal::{Wal, WalRecord, WalTail};
