//! The service snapshot file: a single checksummed image of every
//! session's canonical solver state plus the platform-digest cache.
//!
//! ## On-disk format
//!
//! ```text
//! file    := magic "BSNP" | version u32 | payload | checksum u64
//! payload := seq u64 | digest_cache | sessions
//! ```
//!
//! The checksum is 64-bit FNV-1a over the payload bytes. The file is
//! overwritten in place by each `Snapshot` command; a crash mid-write
//! therefore tears the *only* snapshot — which is safe, because the WAL is
//! never pruned: a rejected snapshot degrades recovery to a full command
//! replay from sequence 1, slower but bit-identical. The snapshot is an
//! optimization, never the authority.
//!
//! `seq` is the WAL sequence number of the `Snapshot` command itself:
//! recovery restores the image and replays only records with a larger
//! sequence number.

use crate::codec::{
    get_schedule_parts, get_session_snapshot, put_schedule_parts, put_session_snapshot,
};
use crate::command::{get_spec, put_spec};
use crate::error::ServiceError;
use crate::session::{SessionImage, StepStats};
use crate::wire::{checksum, Reader, WireError, Writer};
use std::collections::BTreeMap;
use std::path::Path;

const SNAP_MAGIC: &[u8; 4] = b"BSNP";
const SNAP_VERSION: u32 = 1;

/// Everything a snapshot file holds.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceImage {
    /// WAL sequence number of the `Snapshot` command that produced this
    /// image; replay resumes after it.
    pub seq: u64,
    /// Platform digest → binding cuts of the first solve on a platform
    /// with that digest.
    pub digest_cache: BTreeMap<u64, Vec<Vec<bool>>>,
    /// Name-sorted session images.
    pub sessions: Vec<(String, SessionImage)>,
}

fn put_step_stats(w: &mut Writer, s: &StepStats) {
    w.put_usize(s.step);
    w.put_f64(s.tp);
    w.put_usize(s.pivots);
    w.put_usize(s.rounds);
    w.put_usize(s.reused_cuts);
    w.put_usize(s.kept_trees);
    w.put_usize(s.repair_ops);
    w.put_usize(s.grafted);
    w.put_usize(s.pruned);
    w.put_f64(s.efficiency);
    w.put_f64(s.sim_tp);
}

fn get_step_stats(r: &mut Reader) -> Result<StepStats, WireError> {
    Ok(StepStats {
        step: r.get_usize()?,
        tp: r.get_f64()?,
        pivots: r.get_usize()?,
        rounds: r.get_usize()?,
        reused_cuts: r.get_usize()?,
        kept_trees: r.get_usize()?,
        repair_ops: r.get_usize()?,
        grafted: r.get_usize()?,
        pruned: r.get_usize()?,
        efficiency: r.get_f64()?,
        sim_tp: r.get_f64()?,
    })
}

fn put_session_image(w: &mut Writer, image: &SessionImage) {
    put_spec(w, &image.spec);
    w.put_usize(image.steps_done);
    put_session_snapshot(w, &image.solver);
    match &image.schedule {
        None => w.put_u8(0),
        Some(parts) => {
            w.put_u8(1);
            put_schedule_parts(w, parts);
        }
    }
    w.put_seq(&image.log, put_step_stats);
}

fn get_session_image(r: &mut Reader) -> Result<SessionImage, WireError> {
    let spec = get_spec(r)?;
    let steps_done = r.get_usize()?;
    let solver = get_session_snapshot(r)?;
    let schedule = match r.get_u8()? {
        0 => None,
        1 => Some(get_schedule_parts(r)?),
        t => return Err(WireError::BadTag(t)),
    };
    let log = r.get_seq(88, get_step_stats)?;
    Ok(SessionImage {
        spec,
        steps_done,
        solver,
        schedule,
        log,
    })
}

/// Encodes the full file bytes (magic, version, payload, checksum).
pub fn encode_snapshot(image: &ServiceImage) -> Vec<u8> {
    let mut payload = Writer::new();
    payload.put_u64(image.seq);
    payload.put_usize(image.digest_cache.len());
    for (digest, cuts) in &image.digest_cache {
        payload.put_u64(*digest);
        payload.put_seq(cuts, |w, side| {
            w.put_seq(side, |w, b| w.put_bool(*b));
        });
    }
    payload.put_usize(image.sessions.len());
    for (name, session) in &image.sessions {
        payload.put_str(name);
        put_session_image(&mut payload, session);
    }
    let payload = payload.into_bytes();
    let mut bytes = Vec::with_capacity(16 + payload.len());
    bytes.extend_from_slice(SNAP_MAGIC);
    bytes.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    bytes.extend_from_slice(&payload);
    bytes.extend_from_slice(&checksum(&payload).to_le_bytes());
    bytes
}

/// Decodes full file bytes. Any damage — short file, bad magic or
/// version, checksum mismatch, malformed payload — is an `Err`, never a
/// panic: the caller degrades to WAL replay.
pub fn decode_snapshot(bytes: &[u8]) -> Result<ServiceImage, ServiceError> {
    if bytes.len() < 16 {
        return Err(ServiceError::Corrupt("snapshot file too short".into()));
    }
    if &bytes[0..4] != SNAP_MAGIC {
        return Err(ServiceError::Corrupt("snapshot magic mismatch".into()));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != SNAP_VERSION {
        return Err(ServiceError::Corrupt(format!(
            "snapshot version {version} (expected {SNAP_VERSION})"
        )));
    }
    let payload = &bytes[8..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    if checksum(payload) != stored {
        return Err(ServiceError::Corrupt("snapshot checksum mismatch".into()));
    }
    let mut r = Reader::new(payload);
    let seq = r.get_u64()?;
    let cache_len = r.get_len(16)?;
    let mut digest_cache = BTreeMap::new();
    for _ in 0..cache_len {
        let digest = r.get_u64()?;
        let cuts = r.get_seq(8, |r| r.get_seq(1, |r| r.get_bool()))?;
        digest_cache.insert(digest, cuts);
    }
    let n_sessions = r.get_len(8)?;
    let mut sessions = Vec::with_capacity(n_sessions);
    for _ in 0..n_sessions {
        let name = r.get_str()?;
        let image = get_session_image(&mut r)?;
        sessions.push((name, image));
    }
    r.finish()?;
    Ok(ServiceImage {
        seq,
        digest_cache,
        sessions,
    })
}

/// Writes the snapshot file in place, durably. `torn` simulates a crash
/// mid-write: only the first half of the bytes land on disk.
pub fn write_snapshot(path: &Path, image: &ServiceImage, torn: bool) -> Result<(), ServiceError> {
    use std::io::Write;
    let bytes = encode_snapshot(image);
    let cut = if torn {
        (bytes.len() / 2).max(1)
    } else {
        bytes.len()
    };
    let mut file = std::fs::File::create(path)?;
    file.write_all(&bytes[..cut])?;
    file.sync_all()?;
    Ok(())
}

/// Reads the snapshot file. `Ok(None)` when absent (a fresh directory);
/// `Err(Corrupt)` on any damage.
pub fn read_snapshot(path: &Path) -> Result<Option<ServiceImage>, ServiceError> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(ServiceError::Io(e)),
    };
    decode_snapshot(&bytes).map(Some)
}
