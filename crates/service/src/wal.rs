//! The versioned write-ahead command log.
//!
//! ## On-disk format
//!
//! ```text
//! file   := magic "BWAL" | version u32 | record*
//! record := len u32 | seq u64 | payload bytes | checksum u64
//! ```
//!
//! `len` counts the bytes *after* the length prefix (`8 + payload + 8`),
//! and the checksum is 64-bit FNV-1a over `seq || payload`. Appends are
//! flushed with `sync_data` before the command executes — the log is
//! write-*ahead*: a logged command may not have executed (recovery replays
//! it; execution is deterministic), but an executed command is always
//! logged.
//!
//! ## Torn-write detection
//!
//! [`Wal::read_records`] accepts the longest valid prefix: it stops at the
//! first record whose length prefix promises more bytes than remain, whose
//! checksum mismatches, or whose sequence number breaks the strictly
//! increasing chain — and reports *how* it stopped so the service can
//! count the discarded tail. A kill mid-append (or a literal power cut)
//! therefore costs at most the unacknowledged final command, never the
//! log.

use crate::error::ServiceError;
use crate::wire::{checksum, Reader, Writer};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const WAL_MAGIC: &[u8; 4] = b"BWAL";
const WAL_VERSION: u32 = 1;

/// How reading the log ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalTail {
    /// The file ended exactly on a record boundary.
    Clean,
    /// The final record was torn mid-write (short or checksum-mismatched);
    /// `dropped_bytes` of it were discarded.
    Torn {
        /// Bytes of the discarded tail.
        dropped_bytes: usize,
    },
}

/// One decoded WAL record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Strictly increasing sequence number (1-based).
    pub seq: u64,
    /// The encoded command (see `crate::command`).
    pub payload: Vec<u8>,
}

/// An open write-ahead log: an append handle plus the path for re-reads.
pub struct Wal {
    path: PathBuf,
    file: File,
}

impl Wal {
    /// Opens (creating if absent) the log at `path` and validates its
    /// header. A file too short to hold the header is treated as empty
    /// and re-headered — a kill between `create` and the header write is
    /// indistinguishable from that. A wrong magic or version is
    /// [`ServiceError::Corrupt`]: silently appending records another
    /// format's reader would misparse helps nobody.
    pub fn open(path: &Path) -> Result<Wal, ServiceError> {
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let len = file.metadata()?.len();
        if len < 8 {
            file.set_len(0)?;
            let mut header = Writer::new();
            header.put_u8(WAL_MAGIC[0]);
            header.put_u8(WAL_MAGIC[1]);
            header.put_u8(WAL_MAGIC[2]);
            header.put_u8(WAL_MAGIC[3]);
            header.put_u32(WAL_VERSION);
            file.write_all(&header.into_bytes())?;
            file.sync_data()?;
        } else {
            let mut header = [0u8; 8];
            {
                let mut reader = &file;
                reader.read_exact(&mut header)?;
            }
            if &header[0..4] != WAL_MAGIC {
                return Err(ServiceError::Corrupt("WAL magic mismatch".into()));
            }
            let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
            if version != WAL_VERSION {
                return Err(ServiceError::Corrupt(format!(
                    "WAL version {version} (expected {WAL_VERSION})"
                )));
            }
        }
        Ok(Wal {
            path: path.to_path_buf(),
            file,
        })
    }

    /// Encodes one record (without appending it) — shared by the real
    /// append and the mid-append fault, which writes only a prefix.
    pub fn encode_record(seq: u64, payload: &[u8]) -> Vec<u8> {
        let mut record = Writer::new();
        record.put_u32((8 + payload.len() + 8) as u32);
        record.put_u64(seq);
        let mut sum_input = Vec::with_capacity(8 + payload.len());
        sum_input.extend_from_slice(&seq.to_le_bytes());
        sum_input.extend_from_slice(payload);
        let mut bytes = record.into_bytes();
        bytes.extend_from_slice(payload);
        bytes.extend_from_slice(&checksum(&sum_input).to_le_bytes());
        bytes
    }

    /// Appends the record durably (`sync_data` before returning).
    pub fn append(&mut self, seq: u64, payload: &[u8]) -> Result<(), ServiceError> {
        let bytes = Wal::encode_record(seq, payload);
        self.file.write_all(&bytes)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// The mid-append fault: writes roughly half the record and flushes,
    /// leaving a torn tail exactly as a crash mid-`write` would.
    pub fn append_torn(&mut self, seq: u64, payload: &[u8]) -> Result<(), ServiceError> {
        let bytes = Wal::encode_record(seq, payload);
        let cut = (bytes.len() / 2).max(1);
        self.file.write_all(&bytes[..cut])?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Reads every valid record (see the module docs for the acceptance
    /// rule) plus how the log ended.
    pub fn read_records(path: &Path) -> Result<(Vec<WalRecord>, WalTail), ServiceError> {
        let bytes = std::fs::read(path)?;
        if bytes.len() < 8 || &bytes[0..4] != WAL_MAGIC {
            return Err(ServiceError::Corrupt("WAL header unreadable".into()));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != WAL_VERSION {
            return Err(ServiceError::Corrupt(format!(
                "WAL version {version} (expected {WAL_VERSION})"
            )));
        }
        let mut records = Vec::new();
        let body = &bytes[8..];
        let mut pos = 0usize;
        let mut last_seq = 0u64;
        // Manual framing over `body`: any shortfall, checksum mismatch, or
        // sequence break from a record's start onward is a torn tail (the
        // valid prefix survives), not an error.
        while pos < body.len() {
            let dropped = body.len() - pos;
            let torn = WalTail::Torn {
                dropped_bytes: dropped,
            };
            if dropped < 4 {
                return Ok((records, torn));
            }
            let len = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()) as usize;
            if len < 16 || len > dropped - 4 {
                return Ok((records, torn));
            }
            let mut reader = Reader::new(&body[pos + 4..pos + 4 + len]);
            let seq = reader.get_u64().expect("length checked above");
            let payload = body[pos + 12..pos + 4 + len - 8].to_vec();
            let stored_sum =
                u64::from_le_bytes(body[pos + 4 + len - 8..pos + 4 + len].try_into().unwrap());
            let mut sum_input = Vec::with_capacity(8 + payload.len());
            sum_input.extend_from_slice(&seq.to_le_bytes());
            sum_input.extend_from_slice(&payload);
            if checksum(&sum_input) != stored_sum || seq != last_seq + 1 {
                return Ok((records, torn));
            }
            last_seq = seq;
            records.push(WalRecord { seq, payload });
            pos += 4 + len;
        }
        Ok((records, WalTail::Clean))
    }

    /// Re-reads this log's records from disk.
    pub fn records(&self) -> Result<(Vec<WalRecord>, WalTail), ServiceError> {
        Wal::read_records(&self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{flip_byte, truncate_file};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bcast-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_read_round_trip() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("wal.bin");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(1, b"alpha").unwrap();
        wal.append(2, b"").unwrap();
        wal.append(3, b"gamma-gamma").unwrap();
        let (records, tail) = wal.records().unwrap();
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].payload, b"alpha");
        assert_eq!(records[1].payload, b"");
        assert_eq!(records[2].seq, 3);

        // Re-open appends after the existing tail.
        let mut wal = Wal::open(&path).unwrap();
        wal.append(4, b"delta").unwrap();
        let (records, tail) = wal.records().unwrap();
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(records.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = tmp_dir("torn");
        let path = dir.join("wal.bin");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(1, b"keep me").unwrap();
        wal.append_torn(2, b"lose me").unwrap();
        let (records, tail) = Wal::read_records(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert!(matches!(tail, WalTail::Torn { dropped_bytes } if dropped_bytes > 0));

        // Every truncation point of a healthy two-record log yields a
        // valid (possibly empty) prefix — never an error, never garbage.
        let pristine = path.with_extension("pristine");
        {
            let mut wal = Wal::open(&pristine).unwrap();
            wal.append(1, b"first").unwrap();
            wal.append(2, b"second").unwrap();
        }
        let full_bytes = std::fs::read(&pristine).unwrap();
        for cut in 8..full_bytes.len() as u64 {
            std::fs::write(&path, &full_bytes).unwrap();
            truncate_file(&path, cut).unwrap();
            let (records, _) = Wal::read_records(&path).unwrap();
            assert!(records.len() <= 2, "cut at {cut}");
            for (i, r) in records.iter().enumerate() {
                assert_eq!(r.seq, i as u64 + 1, "cut at {cut}");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_byte_invalidates_the_record() {
        let dir = tmp_dir("flip");
        let path = dir.join("wal.bin");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(1, b"payload-bytes").unwrap();
        // Flip one payload byte (skip the 8-byte header, 4-byte len, 8-byte
        // seq): the checksum must reject the record.
        flip_byte(&path, 8 + 4 + 8 + 2).unwrap();
        let (records, tail) = Wal::read_records(&path).unwrap();
        assert!(records.is_empty());
        assert!(matches!(tail, WalTail::Torn { .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
