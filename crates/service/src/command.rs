//! The deterministic command vocabulary of the service.
//!
//! Sessions are mutated *only* through [`Command`]s, and every command's
//! execution is a pure function of the service state it is applied to —
//! no wall clock, no ambient RNG, no thread-count dependence in the
//! results. That is what makes the write-ahead log a complete recovery
//! story: replaying the logged commands over the restored base state
//! reproduces the live state bit for bit.
//!
//! A session's workload — the platform, its drift/churn trace, and the
//! broadcast parameters — is fully described by its [`SessionSpec`]. The
//! trace is a pure function of the spec (`DriftTrace::generate` is
//! seeded), so neither the platform nor the trace is ever persisted; both
//! are regenerated on create *and* on recovery, which keeps snapshots
//! proportional to solver state rather than to trace length.

use crate::wire::{Reader, WireError, Writer};

/// Which platform generator a session draws its base platform from (the
/// paper's three families, `paper`-parameterised).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PlatformFamily {
    /// `random_platform(RandomPlatformConfig::paper(nodes, density))`.
    Random {
        /// Processor count.
        nodes: usize,
        /// Link density.
        density: f64,
    },
    /// `tiers_platform(TiersConfig::paper(nodes, density))`.
    Tiers {
        /// Total node count.
        nodes: usize,
        /// Target density.
        density: f64,
    },
    /// `gaussian_platform(GaussianPlatformConfig::paper(nodes))`.
    Gaussian {
        /// Processor count.
        nodes: usize,
    },
}

/// Complete description of one session's workload. Everything a session
/// ever computes is a deterministic function of this spec.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SessionSpec {
    /// Platform family and size.
    pub family: PlatformFamily,
    /// Seed of the platform generator's RNG.
    pub platform_seed: u64,
    /// Pipelined slice size in bytes.
    pub slice_size: f64,
    /// Batch size `B` of the schedule synthesis.
    pub batch: usize,
    /// Drift steps of the trace (the trace has `drift_steps + 1`
    /// snapshots; snapshot 0 is the unperturbed platform).
    pub drift_steps: usize,
    /// Seed of the drift trace.
    pub drift_seed: u64,
    /// `true` generates a node-churn trace (`DriftConfig::with_churn`
    /// rates on top of failures); `false` a cost-drift + link-failure
    /// trace (`DriftConfig::with_failures`). The broadcast source is node
    /// 0 in both, as in the drift ablation binary.
    pub churn: bool,
}

/// One service command. See the module docs for the determinism contract.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Creates a named session: generates the platform and trace from the
    /// spec, builds the cut-generation session (seeded from the
    /// platform-digest cache on a hit), solves nothing yet.
    CreateSession {
        /// Unique session name.
        name: String,
        /// The session's workload.
        spec: SessionSpec,
    },
    /// Advances the named session one step along its trace through the
    /// cost-drift path. Rejected (deterministically, without mutating)
    /// when the next step changes the node set — that step is a
    /// [`Command::NodeChurn`] — or when the trace is exhausted.
    DriftStep {
        /// Target session.
        session: String,
    },
    /// Advances the named session one step through the churn path
    /// (cut-pool remap, LP column add/delete, schedule grafting).
    /// Rejected when the next step does *not* change the node set.
    NodeChurn {
        /// Target session.
        session: String,
    },
    /// Reads the named session's current schedule statistics. Mutates
    /// nothing (logged like every command; replays as the same no-op).
    QuerySchedule {
        /// Target session.
        session: String,
    },
    /// Re-solves the named session's current platform snapshot in place —
    /// a warm no-op resolve exercising the persistent basis. Rejected
    /// before the first step.
    Resolve {
        /// Target session.
        session: String,
    },
    /// Canonicalizes every session and writes the service snapshot file.
    Snapshot,
}

impl Command {
    /// The session a command targets, if any.
    pub fn session(&self) -> Option<&str> {
        match self {
            Command::CreateSession { name, .. } => Some(name),
            Command::DriftStep { session }
            | Command::NodeChurn { session }
            | Command::QuerySchedule { session }
            | Command::Resolve { session } => Some(session),
            Command::Snapshot => None,
        }
    }

    /// Encodes the command as WAL payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        put_command(&mut w, self);
        w.into_bytes()
    }

    /// Decodes a command from WAL payload bytes (total: corrupt payloads
    /// yield `Err`, never a panic).
    pub fn decode(bytes: &[u8]) -> Result<Command, WireError> {
        let mut r = Reader::new(bytes);
        let command = get_command(&mut r)?;
        r.finish()?;
        Ok(command)
    }
}

fn put_family(w: &mut Writer, family: &PlatformFamily) {
    match *family {
        PlatformFamily::Random { nodes, density } => {
            w.put_u8(0);
            w.put_usize(nodes);
            w.put_f64(density);
        }
        PlatformFamily::Tiers { nodes, density } => {
            w.put_u8(1);
            w.put_usize(nodes);
            w.put_f64(density);
        }
        PlatformFamily::Gaussian { nodes } => {
            w.put_u8(2);
            w.put_usize(nodes);
        }
    }
}

fn get_family(r: &mut Reader) -> Result<PlatformFamily, WireError> {
    Ok(match r.get_u8()? {
        0 => PlatformFamily::Random {
            nodes: r.get_usize()?,
            density: r.get_f64()?,
        },
        1 => PlatformFamily::Tiers {
            nodes: r.get_usize()?,
            density: r.get_f64()?,
        },
        2 => PlatformFamily::Gaussian {
            nodes: r.get_usize()?,
        },
        t => return Err(WireError::BadTag(t)),
    })
}

pub(crate) fn put_spec(w: &mut Writer, spec: &SessionSpec) {
    put_family(w, &spec.family);
    w.put_u64(spec.platform_seed);
    w.put_f64(spec.slice_size);
    w.put_usize(spec.batch);
    w.put_usize(spec.drift_steps);
    w.put_u64(spec.drift_seed);
    w.put_bool(spec.churn);
}

pub(crate) fn get_spec(r: &mut Reader) -> Result<SessionSpec, WireError> {
    Ok(SessionSpec {
        family: get_family(r)?,
        platform_seed: r.get_u64()?,
        slice_size: r.get_f64()?,
        batch: r.get_usize()?,
        drift_steps: r.get_usize()?,
        drift_seed: r.get_u64()?,
        churn: r.get_bool()?,
    })
}

fn put_command(w: &mut Writer, command: &Command) {
    match command {
        Command::CreateSession { name, spec } => {
            w.put_u8(0);
            w.put_str(name);
            put_spec(w, spec);
        }
        Command::DriftStep { session } => {
            w.put_u8(1);
            w.put_str(session);
        }
        Command::NodeChurn { session } => {
            w.put_u8(2);
            w.put_str(session);
        }
        Command::QuerySchedule { session } => {
            w.put_u8(3);
            w.put_str(session);
        }
        Command::Resolve { session } => {
            w.put_u8(4);
            w.put_str(session);
        }
        Command::Snapshot => w.put_u8(5),
    }
}

fn get_command(r: &mut Reader) -> Result<Command, WireError> {
    Ok(match r.get_u8()? {
        0 => Command::CreateSession {
            name: r.get_str()?,
            spec: get_spec(r)?,
        },
        1 => Command::DriftStep {
            session: r.get_str()?,
        },
        2 => Command::NodeChurn {
            session: r.get_str()?,
        },
        3 => Command::QuerySchedule {
            session: r.get_str()?,
        },
        4 => Command::Resolve {
            session: r.get_str()?,
        },
        5 => Command::Snapshot,
        t => return Err(WireError::BadTag(t)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specimen_spec() -> SessionSpec {
        SessionSpec {
            family: PlatformFamily::Tiers {
                nodes: 20,
                density: 0.10,
            },
            platform_seed: 7025,
            slice_size: 1.0e6,
            batch: 16,
            drift_steps: 8,
            drift_seed: 0xC4A1,
            churn: true,
        }
    }

    #[test]
    fn commands_round_trip() {
        let commands = vec![
            Command::CreateSession {
                name: "tiers-a".into(),
                spec: specimen_spec(),
            },
            Command::DriftStep {
                session: "tiers-a".into(),
            },
            Command::NodeChurn {
                session: "tiers-a".into(),
            },
            Command::QuerySchedule {
                session: "tiers-a".into(),
            },
            Command::Resolve {
                session: "tiers-a".into(),
            },
            Command::Snapshot,
        ];
        for command in commands {
            let bytes = command.encode();
            assert_eq!(Command::decode(&bytes).unwrap(), command);
        }
    }

    #[test]
    fn corrupt_command_bytes_fail_cleanly() {
        let bytes = Command::CreateSession {
            name: "x".into(),
            spec: specimen_spec(),
        }
        .encode();
        // Every truncation fails or decodes to *something* without
        // panicking; the full buffer with a bad tag fails.
        for cut in 0..bytes.len() {
            let _ = Command::decode(&bytes[..cut]);
        }
        let mut bad = bytes.clone();
        bad[0] = 99;
        assert!(Command::decode(&bad).is_err());
    }
}
