//! Fault injection: seeded kill points at every command boundary and
//! mid-write, plus free-function artifact corruptors.
//!
//! The harness runs the *same deterministic command sequence* twice — once
//! uninterrupted, once with a [`FaultPlan`] that kills the service at one
//! chosen point — then re-opens the killed service from its on-disk
//! artifacts and drives the remaining commands. The crash-equivalence
//! tests assert the two runs are bit-identical per step.
//!
//! A kill is modelled as [`crate::ServiceError::Killed`] returned *after*
//! the partial side effects of the kill point have hit the disk: a
//! mid-append kill leaves a torn WAL record, a mid-snapshot kill leaves a
//! torn snapshot file. Dropping the killed [`crate::Service`] without any
//! cleanup is exactly what `SIGKILL` would leave behind.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Where the injected crash happens, relative to the WAL sequence number
/// of the command being applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillPoint {
    /// Before the command is appended to the WAL: the command is lost
    /// entirely (the client never got an acknowledgement, so losing it is
    /// correct — recovery resumes at the previous command).
    BeforeAppend(u64),
    /// Mid-way through the WAL append: a torn record — the length prefix
    /// promises more bytes than exist. Recovery must detect and discard
    /// the tail.
    MidAppend(u64),
    /// After the append is durable but before the command executes: the
    /// WAL is ahead of the in-memory state. Recovery replays the record.
    BeforeExec(u64),
    /// After the command executed but before the outcome was returned:
    /// state and WAL agree; recovery replays the record onto the restored
    /// base and reaches the same state (execution is deterministic).
    AfterExec(u64),
    /// Mid-way through writing the snapshot file triggered by the
    /// `Snapshot` command at this sequence number: a torn snapshot.
    /// Recovery must reject it by checksum and fall back to the previous
    /// snapshot — or, as the snapshot file is overwritten in place, to a
    /// full WAL replay from the beginning.
    MidSnapshotWrite(u64),
}

impl KillPoint {
    /// The WAL sequence number the kill is anchored to.
    pub fn seq(&self) -> u64 {
        match *self {
            KillPoint::BeforeAppend(s)
            | KillPoint::MidAppend(s)
            | KillPoint::BeforeExec(s)
            | KillPoint::AfterExec(s)
            | KillPoint::MidSnapshotWrite(s) => s,
        }
    }

    /// All five kill kinds anchored at `seq` — the harness iterates this.
    pub fn all_at(seq: u64) -> [KillPoint; 5] {
        [
            KillPoint::BeforeAppend(seq),
            KillPoint::MidAppend(seq),
            KillPoint::BeforeExec(seq),
            KillPoint::AfterExec(seq),
            KillPoint::MidSnapshotWrite(seq),
        ]
    }
}

/// The (at most one) injected fault of a service instance. Default: none.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Kill the service at this point, if set.
    pub kill: Option<KillPoint>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan that kills at `point`.
    pub fn kill_at(point: KillPoint) -> FaultPlan {
        FaultPlan { kill: Some(point) }
    }

    /// True when `point` is this plan's kill point.
    pub fn hits(&self, point: KillPoint) -> bool {
        self.kill == Some(point)
    }
}

/// Truncates the file at `path` to `len` bytes — a torn-write simulator
/// for artifacts produced by earlier, healthy runs.
pub fn truncate_file(path: &Path, len: u64) -> std::io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(len)?;
    file.sync_all()
}

/// Flips one bit of the byte at `offset` in the file at `path` — a
/// bit-rot simulator. Fails when the file is shorter than `offset + 1`.
pub fn flip_byte(path: &Path, offset: u64) -> std::io::Result<()> {
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    file.seek(SeekFrom::Start(offset))?;
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte)?;
    byte[0] ^= 0x20;
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(&byte)?;
    file.sync_all()
}
