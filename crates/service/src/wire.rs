//! Hand-rolled binary codec for the service's durable artifacts.
//!
//! The workspace's `serde` is a vendored no-op stand-in (see
//! `vendor/serde/Cargo.toml`), so the WAL and snapshot bytes are produced
//! by this module instead: little-endian fixed-width integers, `f64`s as
//! their IEEE-754 bit patterns (`to_bits`/`from_bits`, so snapshots round
//! trip *bit-exactly* — a requirement of the crash-equivalence guarantee),
//! length-prefixed byte strings, and a 64-bit FNV-1a checksum.
//!
//! Every decoder is total: truncated, oversized, or otherwise malformed
//! input yields [`WireError`], never a panic and never an attempt to
//! allocate more than the input could possibly describe.

use std::fmt;

/// Decoding failure: the input bytes do not describe a value of the
/// requested shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    Truncated,
    /// A tag byte does not name a variant of the expected enum.
    BadTag(u8),
    /// A declared length exceeds the bytes actually present.
    BadLength,
    /// Trailing bytes remained after the value was decoded.
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated mid-value"),
            WireError::BadTag(t) => write!(f, "unknown enum tag {t}"),
            WireError::BadLength => write!(f, "declared length exceeds the input"),
            WireError::TrailingBytes => write!(f, "trailing bytes after the value"),
        }
    }
}

impl std::error::Error for WireError {}

/// 64-bit FNV-1a over `bytes` — the integrity check of WAL records and
/// snapshot files. Not cryptographic; it detects torn writes and flipped
/// bytes, which is the failure model here.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Append-only byte sink with typed `put_*` primitives.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` as a little-endian `u64` (the on-disk format is
    /// pointer-width independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// IEEE-754 bit pattern of an `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// One boolean byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// `Option` as a presence byte plus the value.
    pub fn put_opt<T>(&mut self, v: &Option<T>, mut put: impl FnMut(&mut Writer, &T)) {
        match v {
            None => self.put_bool(false),
            Some(inner) => {
                self.put_bool(true);
                put(self, inner);
            }
        }
    }

    /// Slice as a length prefix plus the elements.
    pub fn put_seq<T>(&mut self, v: &[T], mut put: impl FnMut(&mut Writer, &T)) {
        self.put_usize(v.len());
        for item in v {
            put(self, item);
        }
    }

    /// `Option<usize>` — frequent enough in the solver snapshots to
    /// deserve a named helper.
    pub fn put_opt_usize(&mut self, v: &Option<usize>) {
        self.put_opt(v, |w, &x| w.put_usize(x));
    }
}

/// Bounds-checked cursor over encoded bytes.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed — the outermost decoder calls
    /// this so corrupt artifacts cannot hide extra payload.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// One raw byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// `usize` from the on-disk `u64`; fails when the value does not fit
    /// the host's pointer width.
    pub fn get_usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.get_u64()?).map_err(|_| WireError::BadLength)
    }

    /// `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// One boolean byte (strictly 0 or 1 — anything else is corruption).
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let len = self.get_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadLength)
    }

    /// `Option` from a presence byte plus the value.
    pub fn get_opt<T>(
        &mut self,
        mut get: impl FnMut(&mut Reader<'a>) -> Result<T, WireError>,
    ) -> Result<Option<T>, WireError> {
        if self.get_bool()? {
            Ok(Some(get(self)?))
        } else {
            Ok(None)
        }
    }

    /// A declared element count, sanity-capped so a corrupt length field
    /// cannot drive an over-allocation: `count · min_elem_bytes` must not
    /// exceed the bytes actually remaining.
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let len = self.get_usize()?;
        if len
            .checked_mul(min_elem_bytes.max(1))
            .ok_or(WireError::BadLength)?
            > self.remaining()
        {
            return Err(WireError::BadLength);
        }
        Ok(len)
    }

    /// `Vec` from a length prefix plus the elements; `min_elem_bytes` is
    /// the smallest possible encoding of one element (for the allocation
    /// guard).
    pub fn get_seq<T>(
        &mut self,
        min_elem_bytes: usize,
        mut get: impl FnMut(&mut Reader<'a>) -> Result<T, WireError>,
    ) -> Result<Vec<T>, WireError> {
        let len = self.get_len(min_elem_bytes)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(get(self)?);
        }
        Ok(out)
    }

    /// `Option<usize>` — the mirror of [`Writer::put_opt_usize`].
    pub fn get_opt_usize(&mut self) -> Result<Option<usize>, WireError> {
        self.get_opt(|r| r.get_usize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_str("schnappszahl");
        w.put_opt_usize(&Some(42));
        w.put_opt_usize(&None);
        w.put_seq(&[1.5f64, -2.5], |w, &x| w.put_f64(x));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "schnappszahl");
        assert_eq!(r.get_opt_usize().unwrap(), Some(42));
        assert_eq!(r.get_opt_usize().unwrap(), None);
        assert_eq!(r.get_seq(8, |r| r.get_f64()).unwrap(), vec![1.5, -2.5]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_bad_lengths_error_out() {
        let mut w = Writer::new();
        w.put_u64(123);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        assert_eq!(r.get_u64(), Err(WireError::Truncated));

        // A length prefix claiming far more elements than bytes remain.
        let mut w = Writer::new();
        w.put_usize(usize::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.get_seq(8, |r| r.get_f64()).is_err());

        // Non-boolean presence byte.
        let mut r = Reader::new(&[9u8]);
        assert_eq!(r.get_bool(), Err(WireError::BadTag(9)));
    }

    #[test]
    fn checksum_detects_single_byte_flips() {
        let data = b"write-ahead command log record".to_vec();
        let base = checksum(&data);
        for i in 0..data.len() {
            let mut flipped = data.clone();
            flipped[i] ^= 0x40;
            assert_ne!(checksum(&flipped), base, "flip at byte {i} undetected");
        }
    }
}
