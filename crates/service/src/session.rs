//! One live solver session: a drifting platform trace plus the persistent
//! cut-generation state and the current schedule, advanced one trace step
//! per command.
//!
//! The step dispatch mirrors the drift ablation binary exactly: step 0 is
//! a cold `solve_step` + full synthesis; a later step whose
//! [`ChurnRemap`] is the identity goes through `solve_step` +
//! `resynthesize_schedule`; a step that changes the node set goes through
//! `solve_step_churn` + `resynthesize_schedule_churn`. Every step is
//! finished by a simulator replay of the repaired schedule, and the
//! per-step statistics (throughput, pivots, rounds, repair operations,
//! simulated throughput) are appended to the session's log — that log is
//! what the crash-equivalence harness compares bit for bit.

use crate::command::{PlatformFamily, SessionSpec};
use crate::error::ServiceError;
use bcast_core::{CutGenOptions, CutGenSession, SessionSnapshot};
use bcast_net::NodeId;
use bcast_platform::drift::{DriftConfig, DriftTrace};
use bcast_platform::generators::gaussian_field::{gaussian_platform, GaussianPlatformConfig};
use bcast_platform::generators::random::{random_platform, RandomPlatformConfig};
use bcast_platform::generators::tiers::{tiers_platform, TiersConfig};
use bcast_platform::{MessageSpec, Platform};
use bcast_sched::{
    resynthesize_schedule, resynthesize_schedule_churn, synthesize_schedule, PeriodicSchedule,
    RepairReport, ScheduleParts, SynthesisConfig,
};
use bcast_sim::simulate_schedule;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-step record of one session, the unit the crash-equivalence tests
/// compare. Every field is a deterministic function of the session spec
/// and the command sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepStats {
    /// Trace step index.
    pub step: usize,
    /// Optimal throughput of the step's master LP.
    pub tp: f64,
    /// Simplex pivots spent by the step's solve.
    pub pivots: usize,
    /// Master separation rounds.
    pub rounds: usize,
    /// Cuts carried over from the previous step's pool.
    pub reused_cuts: usize,
    /// Previous-period trees kept by the schedule repair.
    pub kept_trees: usize,
    /// Repair operations (grafts + prunes + rebuilds).
    pub repair_ops: usize,
    /// Nodes grafted by churn repair.
    pub grafted: usize,
    /// Nodes pruned by churn repair.
    pub pruned: usize,
    /// Schedule efficiency (`throughput / lp_throughput`).
    pub efficiency: f64,
    /// Simulated steady-state throughput of the repaired schedule.
    pub sim_tp: f64,
}

/// Read-only answer of a `QuerySchedule` command.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduleStats {
    /// Steady-state throughput in slices per time unit.
    pub throughput: f64,
    /// Period in seconds.
    pub period: f64,
    /// Slices broadcast per period.
    pub slices_per_period: usize,
    /// `throughput / lp_throughput`.
    pub efficiency: f64,
    /// Pipeline depth in periods.
    pub max_lag: usize,
    /// Transfers per period.
    pub transfers: usize,
}

/// Plain-data image of a whole [`Session`] for the service snapshot: the
/// spec (from which platform and trace are regenerated), the canonical
/// solver snapshot, the schedule parts, and the step log.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionImage {
    /// The session's workload description.
    pub spec: SessionSpec,
    /// Trace steps already executed.
    pub steps_done: usize,
    /// Canonicalized cut-generation state.
    pub solver: SessionSnapshot,
    /// Current schedule, if a step has produced one.
    pub schedule: Option<ScheduleParts>,
    /// Per-step statistics so far.
    pub log: Vec<StepStats>,
}

/// A live session.
pub struct Session {
    /// The workload description (immutable after creation).
    pub spec: SessionSpec,
    trace: DriftTrace,
    solver: CutGenSession,
    schedule: Option<PeriodicSchedule>,
    steps_done: usize,
    log: Vec<StepStats>,
}

/// Regenerates the base platform of `spec` (a pure function of the spec).
pub fn generate_platform(spec: &SessionSpec) -> Platform {
    let mut rng = StdRng::seed_from_u64(spec.platform_seed);
    match spec.family {
        PlatformFamily::Random { nodes, density } => {
            random_platform(&RandomPlatformConfig::paper(nodes, density), &mut rng)
        }
        PlatformFamily::Tiers { nodes, density } => {
            tiers_platform(&TiersConfig::paper(nodes, density), &mut rng)
        }
        PlatformFamily::Gaussian { nodes } => {
            gaussian_platform(&GaussianPlatformConfig::paper(nodes), &mut rng)
        }
    }
}

/// Regenerates the drift trace of `spec` (a pure function of the spec; the
/// broadcast source is node 0, as in the drift ablation binary).
pub fn generate_trace(spec: &SessionSpec) -> DriftTrace {
    let platform = generate_platform(spec);
    let config = if spec.churn {
        DriftConfig::with_churn(spec.drift_steps, spec.drift_seed)
    } else {
        DriftConfig::with_failures(spec.drift_steps, spec.drift_seed)
    };
    DriftTrace::generate(&platform, NodeId(0), &config)
}

impl Session {
    /// Creates the session: regenerates platform and trace, builds the
    /// cut-generation session on the trace's step-0 platform. `options`
    /// carries the digest-cache seed cuts when the service had a hit.
    pub fn create(spec: SessionSpec, options: CutGenOptions) -> Result<Session, ServiceError> {
        let trace = generate_trace(&spec);
        let solver = CutGenSession::new(
            &trace.platform_at(0),
            trace.source_at(0),
            spec.slice_size,
            options,
        )?;
        Ok(Session {
            spec,
            trace,
            solver,
            schedule: None,
            steps_done: 0,
            log: Vec::new(),
        })
    }

    /// Rebuilds a session from its snapshot image: regenerate the trace
    /// from the spec, restore the solver onto the platform of the step the
    /// image was taken at, reassemble the schedule. Malformed images fail
    /// with the owning crate's validation error, never a panic.
    pub fn restore(image: &SessionImage) -> Result<Session, ServiceError> {
        if image.steps_done > image.spec.drift_steps + 1 {
            return Err(ServiceError::Corrupt(
                "session image claims more steps than its trace has".into(),
            ));
        }
        let trace = generate_trace(&image.spec);
        let platform = trace.platform_at(image.steps_done.saturating_sub(1));
        let solver = CutGenSession::restore(&platform, &image.solver)?;
        let schedule = match &image.schedule {
            None => None,
            Some(parts) => Some(PeriodicSchedule::from_parts(&platform, parts)?),
        };
        Ok(Session {
            spec: image.spec,
            trace,
            solver,
            schedule,
            steps_done: image.steps_done,
            log: image.log.clone(),
        })
    }

    /// Captures *and canonicalizes* the session (see
    /// [`CutGenSession::snapshot`]): after this call the live session's
    /// future is bit-identical to that of a session restored from the
    /// returned image.
    pub fn snapshot(&mut self) -> SessionImage {
        let platform = self.trace.platform_at(self.steps_done.saturating_sub(1));
        SessionImage {
            spec: self.spec,
            steps_done: self.steps_done,
            solver: self.solver.snapshot(&platform),
            schedule: self.schedule.as_ref().map(|s| s.to_parts()),
            log: self.log.clone(),
        }
    }

    /// Trace steps already executed.
    pub fn steps_done(&self) -> usize {
        self.steps_done
    }

    /// Total trace length (steps available).
    pub fn trace_len(&self) -> usize {
        self.trace.len()
    }

    /// The per-step log so far.
    pub fn log(&self) -> &[StepStats] {
        &self.log
    }

    /// True when the next trace step changes the node set (and must be
    /// driven by `NodeChurn` rather than `DriftStep`).
    pub fn next_step_is_churn(&self) -> bool {
        let step = self.steps_done;
        step > 0 && step < self.trace.len() && !self.trace.remap(step - 1, step).is_identity()
    }

    /// Why the next advance would be rejected, if it would be. `churn`
    /// says which command is asking.
    pub fn advance_rejection(&self, churn: bool) -> Option<String> {
        if self.steps_done >= self.trace.len() {
            return Some("trace exhausted".into());
        }
        match (churn, self.next_step_is_churn()) {
            (false, true) => Some("next step changes the node set: use NodeChurn".into()),
            (true, false) => Some("next step keeps the node set: use DriftStep".into()),
            _ => None,
        }
    }

    /// Executes the next trace step (drift or churn path per the trace)
    /// and appends its [`StepStats`] to the log. The caller has already
    /// checked [`advance_rejection`](Session::advance_rejection).
    pub fn advance(&mut self) -> Result<StepStats, ServiceError> {
        let step = self.steps_done;
        let platform = self.trace.platform_at(step);
        let source = self.trace.source_at(step);
        let config = SynthesisConfig::with_batch(self.spec.batch);
        let spec = MessageSpec::new(
            4.0 * self.spec.batch as f64 * self.spec.slice_size,
            self.spec.slice_size,
        );
        let churn_remap = (step > 0)
            .then(|| self.trace.remap(step - 1, step))
            .filter(|remap| !remap.is_identity());
        let result = match &churn_remap {
            Some(remap) => self.solver.solve_step_churn(&platform, remap)?,
            None => self.solver.solve_step(&platform)?,
        };
        let (schedule, report): (PeriodicSchedule, RepairReport) = match &self.schedule {
            None => {
                let s = synthesize_schedule(
                    &platform,
                    source,
                    &result.optimal,
                    self.spec.slice_size,
                    &config,
                )?;
                (s, RepairReport::default())
            }
            Some(prev) => match &churn_remap {
                Some(remap) => resynthesize_schedule_churn(
                    &platform,
                    source,
                    &result.optimal,
                    self.spec.slice_size,
                    &config,
                    prev,
                    remap,
                )?,
                None => resynthesize_schedule(
                    &platform,
                    source,
                    &result.optimal,
                    self.spec.slice_size,
                    &config,
                    prev,
                )?,
            },
        };
        let sim = simulate_schedule(&platform, &schedule, &spec);
        let stats = StepStats {
            step,
            tp: result.optimal.throughput,
            pivots: result.optimal.simplex_iterations,
            rounds: result.optimal.iterations,
            reused_cuts: result.reused_cuts,
            kept_trees: report.kept_trees,
            repair_ops: report.repair_ops(),
            grafted: report.grafted_nodes,
            pruned: report.pruned_nodes,
            efficiency: schedule.efficiency(),
            sim_tp: sim.batch_throughput(schedule.slices_per_period()),
        };
        self.schedule = Some(schedule);
        self.steps_done = step + 1;
        self.log.push(stats);
        Ok(stats)
    }

    /// Re-solves the current platform snapshot in place (the `Resolve`
    /// command): a warm resolve over unchanged coefficients, exercising
    /// the persistent basis. The caller has checked `steps_done > 0`.
    pub fn resolve(&mut self) -> Result<(f64, usize), ServiceError> {
        let platform = self.trace.platform_at(self.steps_done - 1);
        let result = self.solver.solve_step(&platform)?;
        Ok((result.optimal.throughput, result.optimal.simplex_iterations))
    }

    /// The binding cuts of the solver's current pool as node partitions —
    /// the digest cache's payload (empty before the first step).
    pub fn sharable_cuts(&self) -> Vec<Vec<bool>> {
        // The snapshotable capture exposes the cut pool as plain data;
        // capture (without canonicalizing) and keep the active cuts.
        self.solver
            .capture()
            .cuts
            .iter()
            .filter(|c| c.active)
            .map(|c| c.side.clone())
            .collect()
    }

    /// Schedule statistics for `QuerySchedule` (None before step 0).
    pub fn schedule_stats(&self) -> Option<ScheduleStats> {
        self.schedule.as_ref().map(|s| ScheduleStats {
            throughput: s.throughput(),
            period: s.period(),
            slices_per_period: s.slices_per_period(),
            efficiency: s.efficiency(),
            max_lag: s.max_lag(),
            transfers: s.transfers().len(),
        })
    }

    /// The platform digest of this session's base platform (step 0).
    pub fn platform_digest(&self) -> u64 {
        platform_digest(&self.trace.platform_at(0))
    }
}

/// Structural digest of a platform: node count, edge endpoints, and the
/// exact cost bits. Two platforms with equal digests describe the same
/// master LP, so binding cuts of one seed the other soundly (cuts are
/// node partitions, valid for any platform with the node count — the
/// digest match just makes them *useful*, not merely harmless).
pub fn platform_digest(platform: &Platform) -> u64 {
    let mut bytes: Vec<u8> = Vec::with_capacity(16 + platform.edge_count() * 56);
    bytes.extend_from_slice(&(platform.node_count() as u64).to_le_bytes());
    bytes.extend_from_slice(&(platform.edge_count() as u64).to_le_bytes());
    for e in platform.graph().edges() {
        bytes.extend_from_slice(&e.src.0.to_le_bytes());
        bytes.extend_from_slice(&e.dst.0.to_le_bytes());
        let c = platform.link_cost(e.id);
        for v in [
            c.alpha,
            c.beta,
            c.send_latency,
            c.send_per_byte,
            c.recv_latency,
            c.recv_per_byte,
        ] {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    crate::wire::checksum(&bytes)
}
