//! Integration tests of the `bcast-obs` instrumentation layer as the
//! experiment binaries use it: the disabled-overhead guard, the journal
//! golden (bit-identical across runs after scrubbing wall-clock fields),
//! and the `solver_report` contract (schema check + span coverage) on a
//! real drift walk.
//!
//! The obs sink is process-global, so every test serializes on [`LOCK`]
//! and leaves the sink disabled and reset behind itself.

use bcast_core::optimal::cut_gen;
use bcast_core::optimal::cut_gen::CutGenSession;
use bcast_core::CutGenOptions;
use bcast_net::NodeId;
use bcast_obs::report;
use bcast_platform::drift::{DriftConfig, DriftTrace};
use bcast_platform::generators::tiers::{tiers_platform, TiersConfig};
use bcast_platform::Platform;
use bcast_sched::{resynthesize_schedule, synthesize_schedule, PeriodicSchedule, SynthesisConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;
use std::time::Instant;

/// Serializes tests that toggle the process-global obs sink.
static LOCK: Mutex<()> = Mutex::new(());

const SLICE: f64 = 1.0e6;

fn tiers(nodes: usize, density: f64, seed: u64) -> Platform {
    let mut rng = StdRng::seed_from_u64(seed);
    tiers_platform(&TiersConfig::paper(nodes, density), &mut rng)
}

/// The deterministic workload behind the golden and coverage tests: a
/// short Tiers-40 drift walk through the full pipeline (warm cut
/// generation, schedule synthesis + repair), the same shape as one `drift`
/// trace at test scale. Wrapped in a single top-level span so the span
/// tree accounts for (nearly) the whole run.
fn drift_walk() {
    let _span = bcast_obs::span!("test.walk");
    let platform = tiers(40, 0.10, 77);
    let trace = DriftTrace::generate(&platform, NodeId(0), &DriftConfig::with_failures(4, 77));
    let source = trace.source();
    let config = SynthesisConfig::with_batch(8);
    let mut session = CutGenSession::new(trace.base(), source, SLICE, CutGenOptions::default())
        .expect("base platform solvable");
    let mut previous: Option<PeriodicSchedule> = None;
    for step in 0..trace.len() {
        let snapshot = trace.platform_at(step);
        let result = session.solve_step(&snapshot).expect("warm step solvable");
        let schedule = match &previous {
            None => synthesize_schedule(&snapshot, source, &result.optimal, SLICE, &config)
                .expect("synthesis succeeds"),
            Some(prev) => {
                resynthesize_schedule(&snapshot, source, &result.optimal, SLICE, &config, prev)
                    .expect("repair succeeds")
                    .0
            }
        };
        bcast_obs::emit_with(|| bcast_obs::Event::DriftStep {
            step: step as u64,
            kind: "drift",
            warm_ns: 0,
            cold_ns: 0,
            tp_rel_err: 0.0,
        });
        previous = Some(schedule);
    }
}

/// Replaces the numeric value of every `*_ns` field with `0` — the only
/// journal fields that legitimately differ between two runs of the same
/// deterministic workload.
fn scrub_ns(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(pos) = rest.find("_ns\":") {
        let cut = pos + "_ns\":".len();
        out.push_str(&rest[..cut]);
        out.push('0');
        rest = &rest[cut..];
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
            .unwrap_or(rest.len());
        rest = &rest[end..];
    }
    out.push_str(rest);
    out
}

fn journal_run(path: &std::path::Path) -> String {
    bcast_obs::install_journal(path, "observability-test").expect("journal installs");
    drift_walk();
    bcast_obs::flush_journal().expect("journal flushes");
    std::fs::read_to_string(path).expect("journal readable")
}

/// The journal of a fixed-seed drift walk is bit-identical across runs
/// once wall-clock (`*_ns`) fields are scrubbed, passes the schema
/// validator, and its span tree covers ≥ 90% of the run.
#[test]
fn journal_golden_check_and_coverage() {
    let _guard = LOCK.lock().unwrap();
    let dir = std::env::temp_dir();
    let path_a = dir.join("bcast_obs_golden_a.jsonl");
    let path_b = dir.join("bcast_obs_golden_b.jsonl");
    let text_a = journal_run(&path_a);
    let text_b = journal_run(&path_b);
    bcast_obs::disable();
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);

    let summary = report::check(&text_a).expect("journal passes the schema check");
    assert!(summary.records > 50, "workload too small to be meaningful");
    assert!(
        summary.by_type.iter().any(|(t, _)| t == "lp_solve"),
        "no lp_solve records in {:?}",
        summary.by_type
    );
    assert!(
        summary.by_type.iter().any(|(t, _)| t == "drift_step"),
        "no drift_step records in {:?}",
        summary.by_type
    );

    let scrubbed_a = scrub_ns(&text_a);
    let scrubbed_b = scrub_ns(&text_b);
    assert!(
        scrubbed_a == scrubbed_b,
        "journals differ after scrubbing *_ns fields"
    );
    // The scrub must actually have had something to scrub (guards against
    // a silent rename of the duration fields).
    assert_ne!(scrubbed_a, text_a, "no *_ns fields found in the journal");

    let rep = report::build_report(&text_a);
    assert!(
        rep.coverage >= 0.90,
        "span coverage {:.1}% below the 90% floor",
        rep.coverage * 100.0
    );
    assert_eq!(rep.binary, "observability-test");
}

/// The disabled-sink cost of the instrumentation on a Tiers-65 cut
/// generation stays under 2% of the solve: (number of instrumentation
/// operations the solve performs) × (measured per-operation disabled
/// cost) ≤ 2% of the disabled-sink wall-clock. The op count is taken from
/// an enabled run of the same solve; the product over-counts the real
/// overhead (disabled guards skip all bookkeeping), so the bound is
/// conservative.
#[test]
fn disabled_overhead_within_two_percent() {
    let _guard = LOCK.lock().unwrap();
    bcast_obs::disable();
    bcast_obs::reset_spans();
    bcast_obs::reset_metrics();
    let platform = tiers(65, 0.06, 65);
    let solve = || {
        cut_gen::solve_with(&platform, NodeId(0), SLICE, &CutGenOptions::default())
            .expect("solvable instance")
    };

    // Per-op disabled cost: one span guard is the unit (enter + drop);
    // counter/gauge/emit sites are the same single relaxed load or less.
    let probes = 1_000_000u64;
    let start = Instant::now();
    for _ in 0..probes {
        let _g = bcast_obs::span!("overhead.probe");
    }
    let per_op = start.elapsed().as_secs_f64() / probes as f64;

    // Disabled wall-clock of the real solve (minimum of three runs — the
    // least noisy estimator).
    let disabled_wall = (0..3)
        .map(|_| {
            let start = Instant::now();
            solve();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);

    // Count the instrumentation ops the solve performs.
    bcast_obs::enable();
    bcast_obs::reset_spans();
    bcast_obs::reset_metrics();
    solve();
    bcast_obs::disable();
    let span_ops: u64 = bcast_obs::span_stats().iter().map(|(_, s)| s.calls).sum();
    let counter_ops: u64 = bcast_obs::counters_snapshot().len() as u64;
    bcast_obs::reset_spans();
    bcast_obs::reset_metrics();
    // The floor guards against an accidentally trivial workload. It sits
    // below the old >1000 mark because the Markowitz LU factorizes without
    // FTRAN'ing each basic column (the previous product-form pass emitted
    // one `lp.ftran` span per column per refactorization).
    assert!(span_ops > 300, "solve performed too few spans ({span_ops})");

    // 2x safety factor on the op count for the sites the span stats do not
    // enumerate (per-call counter adds, suppressed journal emits).
    let projected = 2.0 * (span_ops + counter_ops) as f64 * per_op;
    let budget = 0.02 * disabled_wall;
    assert!(
        projected <= budget,
        "projected disabled overhead {:.3}ms exceeds 2% of the {:.1}ms solve \
         ({span_ops} span ops at {:.1}ns each)",
        projected * 1e3,
        disabled_wall * 1e3,
        per_op * 1e9
    );
}
