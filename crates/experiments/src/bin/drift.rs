//! Dynamic platforms (ablation 6): link-cost drift traces, solved per step
//! by the cross-step warm-started cut-generation session and repaired by
//! incremental schedule re-synthesis, against the cold per-step baseline.
//!
//! For every platform family (Random-20, Tiers-40, Gaussian-20 — `--quick`
//! restricts to Tiers-20) the binary generates a deterministic drift trace
//! (multiplicative link-cost perturbations plus link failure/recovery
//! events) and walks it twice:
//!
//! * **warm** — one [`bcast_core::CutGenSession`] carries the simplex basis
//!   *and* the cut pool across steps (the one-port rows are coefficient-
//!   updated in place), and `bcast_sched::resynthesize_schedule` repairs
//!   the previous period's trees instead of rebuilding them;
//! * **cold** — every step re-solves the LP from scratch
//!   (`warm_start: false`, no carried cuts) and synthesizes a fresh
//!   schedule.
//!
//! Both sides replay the resulting schedule through `bcast-sim` and report
//! the simulated throughput; per step the table shows TP, simplex pivots,
//! master rounds, reused cuts, schedule repair operations, and schedule
//! efficiency; the footer shows the warm-vs-cold totals (the ablation
//! number: total pivots must drop ≥ 5× on Tiers-40, asserted at test scale
//! by `tests/dynamic_drift.rs`).
//!
//! A second section (ablation 8) adds **node churn**: traces where
//! processors join and leave are swept over (join, leave) rate pairs; the
//! warm side survives the node-set changes via `solve_step_churn` (cut-pool
//! remapping plus in-place LP column add/delete) and
//! `resynthesize_schedule_churn` (grafting joiners, pruning leavers), again
//! against cold from-scratch re-solves. Every churn trace is seed-probed to
//! exercise at least one join *and* one leave — including under `--quick`,
//! so the CI smoke genuinely covers both event kinds
//! (`tests/churn_drift.rs` asserts the equivalence and the pivot drop at
//! test scale).
//!
//! ```text
//! cargo run --release -p bcast-experiments --bin drift -- [--configs N] [--seed S] [--quick] [--csv PATH] [--journal PATH]
//! ```

use bcast_core::optimal::cut_gen;
use bcast_core::{CutGenOptions, CutGenSession};
use bcast_experiments::{
    finish_journal_or_exit, install_journal_or_exit, write_csv_or_exit, AsciiTable, ExperimentArgs,
};
use bcast_net::NodeId;
use bcast_platform::drift::{DriftConfig, DriftEvent, DriftTrace};
use bcast_platform::generators::gaussian_field::{gaussian_platform, GaussianPlatformConfig};
use bcast_platform::generators::random::{random_platform, RandomPlatformConfig};
use bcast_platform::generators::tiers::{tiers_platform, TiersConfig};
use bcast_platform::{MessageSpec, Platform};
use bcast_sched::{
    resynthesize_schedule, resynthesize_schedule_churn, synthesize_schedule, PeriodicSchedule,
    SynthesisConfig,
};
use bcast_sim::simulate_schedule;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SLICE: f64 = 1.0e6;
const DRIFT_STEPS: usize = 10;
const CHURN_STEPS: usize = 8;
const BATCH: usize = 16;

/// Simplex iteration budget of the cold from-scratch baseline solves.
///
/// The engines' automatic budget (`200·(rows+cols) + 2000`) is sized for
/// warm-started master re-solves; a cold phase-1/phase-2 walk over a
/// heavily degenerate drift snapshot can legitimately need more (the
/// seed-2004 random-20 stall documented in EXPERIMENTS.md exhausted it on
/// a dual plateau). The baseline is the *measurement yardstick* here, so
/// it gets generous headroom rather than a competitive cap.
const COLD_ITERATION_BUDGET: usize = 400_000;

/// Relative throughput disagreement between the warm and cold solves of
/// one step (the differential tests bound this at 1e-6; the journal
/// records it per step).
fn tp_rel_err(warm_tp: f64, cold_tp: f64) -> f64 {
    (warm_tp - cold_tp).abs() / cold_tp.abs().max(f64::MIN_POSITIVE)
}

struct StepRecord {
    step: usize,
    tp: f64,
    warm_pivots: usize,
    cold_pivots: usize,
    warm_rounds: usize,
    cold_rounds: usize,
    reused_cuts: usize,
    repair_ops: usize,
    kept_trees: usize,
    efficiency: f64,
    sim_tp: f64,
}

type PlatformGenerator = Box<dyn Fn(u64) -> Platform>;

fn main() {
    let args = ExperimentArgs::from_env(3);
    install_journal_or_exit(&args.journal, "drift");
    // Results are byte-identical at any separation thread count; the CI
    // smoke passes `--separation-threads 4` to exercise the sharded oracle.
    let mut options = CutGenOptions::default();
    if let Some(threads) = args.separation_threads {
        options.separation_threads = threads;
    }
    println!("Ablation 6 — dynamic platforms: cross-step warm start + incremental schedule repair");
    println!(
        "({DRIFT_STEPS} drift steps per trace, lognormal sigma 0.15, 4% link failures, \
         batch B = {BATCH}, {} instance(s) per family)\n",
        args.configs
    );
    let families: Vec<(&str, PlatformGenerator)> = if args.quick {
        vec![(
            "tiers-20",
            Box::new(|seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                tiers_platform(&TiersConfig::paper(20, 0.10), &mut rng)
            }),
        )]
    } else {
        vec![
            (
                "random-20",
                Box::new(|seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    random_platform(&RandomPlatformConfig::paper(20, 0.12), &mut rng)
                }) as PlatformGenerator,
            ),
            (
                "tiers-40",
                Box::new(|seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    tiers_platform(&TiersConfig::paper(40, 0.10), &mut rng)
                }),
            ),
            (
                "gaussian-20",
                Box::new(|seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    gaussian_platform(&GaussianPlatformConfig::paper(20), &mut rng)
                }),
            ),
        ]
    };

    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for (label, generate) in &families {
        let mut total_warm = 0usize;
        let mut total_cold = 0usize;
        let mut warm_ms = 0.0f64;
        let mut cold_ms = 0.0f64;
        for instance in 0..args.configs {
            let platform = generate(args.seed + 101 * instance as u64);
            let trace = DriftTrace::generate(
                &platform,
                NodeId(0),
                &DriftConfig::with_failures(DRIFT_STEPS, args.seed + instance as u64),
            );
            let (records, w_ms, c_ms) = run_trace(&trace, &options);
            warm_ms += w_ms;
            cold_ms += c_ms;
            if instance == 0 {
                let mut table = AsciiTable::new(vec![
                    "step",
                    "TP",
                    "warm piv",
                    "cold piv",
                    "w rounds",
                    "c rounds",
                    "cuts reused",
                    "kept",
                    "repairs",
                    "sched eff",
                    "sim TP",
                ]);
                for r in &records {
                    table.add_row(vec![
                        r.step.to_string(),
                        format!("{:.3}", r.tp),
                        r.warm_pivots.to_string(),
                        r.cold_pivots.to_string(),
                        r.warm_rounds.to_string(),
                        r.cold_rounds.to_string(),
                        r.reused_cuts.to_string(),
                        r.kept_trees.to_string(),
                        r.repair_ops.to_string(),
                        format!("{:.3}", r.efficiency),
                        format!("{:.3}", r.sim_tp),
                    ]);
                }
                println!("{label} (instance 0):\n{}", table.render());
            }
            for r in &records {
                if r.step > 0 {
                    total_warm += r.warm_pivots;
                    total_cold += r.cold_pivots;
                }
                csv_rows.push(vec![
                    "drift".to_string(),
                    label.to_string(),
                    instance.to_string(),
                    "0".to_string(),
                    "0".to_string(),
                    r.step.to_string(),
                    format!("{}", r.tp),
                    r.warm_pivots.to_string(),
                    r.cold_pivots.to_string(),
                    r.warm_rounds.to_string(),
                    r.cold_rounds.to_string(),
                    r.reused_cuts.to_string(),
                    r.kept_trees.to_string(),
                    r.repair_ops.to_string(),
                    "0".to_string(),
                    "0".to_string(),
                    format!("{}", r.efficiency),
                    format!("{}", r.sim_tp),
                ]);
            }
        }
        println!(
            "{label} drift-step totals: warm {total_warm} pivots vs cold {total_cold} pivots \
             ({:.1}x drop), wall-clock warm {warm_ms:.0} ms vs cold {cold_ms:.0} ms\n",
            total_cold as f64 / total_warm.max(1) as f64
        );
    }
    // ---- Ablation 8: node churn (join/leave rate sweep). -----------------
    let (churn_label, churn_gen): (&str, PlatformGenerator) = if args.quick {
        (
            "tiers-20",
            Box::new(|seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                tiers_platform(&TiersConfig::paper(20, 0.10), &mut rng)
            }),
        )
    } else {
        (
            "tiers-40",
            Box::new(|seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                tiers_platform(&TiersConfig::paper(40, 0.10), &mut rng)
            }),
        )
    };
    let rate_points: &[(f64, f64)] = if args.quick {
        &[(0.45, 0.35)]
    } else {
        &[(0.20, 0.10), (0.45, 0.35), (0.60, 0.50)]
    };
    println!(
        "Ablation 8 — node churn on {churn_label}: joins grafted / leaves pruned in place \
         ({CHURN_STEPS} churn steps per trace, every trace exercises ≥ 1 join and ≥ 1 leave)\n"
    );
    for (point, &(join_rate, leave_rate)) in rate_points.iter().enumerate() {
        let mut total_warm = 0usize;
        let mut total_cold = 0usize;
        let mut total_joins = 0usize;
        let mut total_leaves = 0usize;
        let mut warm_ms = 0.0f64;
        let mut cold_ms = 0.0f64;
        for instance in 0..args.configs {
            let platform = churn_gen(args.seed + 101 * instance as u64);
            let trace = churn_trace(
                &platform,
                join_rate,
                leave_rate,
                args.seed + 17 * point as u64 + instance as u64,
            );
            let (joins, leaves) = churn_events(&trace);
            total_joins += joins;
            total_leaves += leaves;
            let (records, w_ms, c_ms) = run_churn_trace(&trace, &options);
            warm_ms += w_ms;
            cold_ms += c_ms;
            if instance == 0 {
                let mut table = AsciiTable::new(vec![
                    "step",
                    "TP",
                    "warm piv",
                    "cold piv",
                    "cuts reused",
                    "kept",
                    "repairs",
                    "grafted",
                    "pruned",
                    "sched eff",
                    "sim TP",
                ]);
                for r in &records {
                    table.add_row(vec![
                        r.step.to_string(),
                        format!("{:.3}", r.tp),
                        r.warm_pivots.to_string(),
                        r.cold_pivots.to_string(),
                        r.reused_cuts.to_string(),
                        r.kept_trees.to_string(),
                        r.repair_ops.to_string(),
                        r.grafted.to_string(),
                        r.pruned.to_string(),
                        format!("{:.3}", r.efficiency),
                        format!("{:.3}", r.sim_tp),
                    ]);
                }
                println!(
                    "{churn_label} join {join_rate:.2} / leave {leave_rate:.2} (instance 0):\n{}",
                    table.render()
                );
            }
            for r in &records {
                if r.step > 0 {
                    total_warm += r.warm_pivots;
                    total_cold += r.cold_pivots;
                }
                csv_rows.push(vec![
                    "churn".to_string(),
                    churn_label.to_string(),
                    instance.to_string(),
                    format!("{join_rate}"),
                    format!("{leave_rate}"),
                    r.step.to_string(),
                    format!("{}", r.tp),
                    r.warm_pivots.to_string(),
                    r.cold_pivots.to_string(),
                    r.warm_rounds.to_string(),
                    r.cold_rounds.to_string(),
                    r.reused_cuts.to_string(),
                    r.kept_trees.to_string(),
                    r.repair_ops.to_string(),
                    r.grafted.to_string(),
                    r.pruned.to_string(),
                    format!("{}", r.efficiency),
                    format!("{}", r.sim_tp),
                ]);
            }
        }
        println!(
            "{churn_label} join {join_rate:.2} / leave {leave_rate:.2} churn-step totals: \
             {total_joins} joins, {total_leaves} leaves; warm {total_warm} pivots vs cold \
             {total_cold} pivots ({:.1}x drop), wall-clock warm {warm_ms:.0} ms vs cold \
             {cold_ms:.0} ms\n",
            total_cold as f64 / total_warm.max(1) as f64
        );
    }
    if let Some(path) = &args.csv {
        let header: Vec<String> = [
            "ablation",
            "family",
            "instance",
            "join_rate",
            "leave_rate",
            "step",
            "tp",
            "warm_pivots",
            "cold_pivots",
            "warm_rounds",
            "cold_rounds",
            "reused_cuts",
            "kept_trees",
            "repair_ops",
            "grafted_nodes",
            "pruned_nodes",
            "efficiency",
            "sim_tp",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        write_csv_or_exit(path, &header, &csv_rows);
    }
    finish_journal_or_exit();
}

/// Walks one trace warm and cold; returns the per-step records plus the two
/// wall-clock totals in milliseconds.
fn run_trace(trace: &DriftTrace, options: &CutGenOptions) -> (Vec<StepRecord>, f64, f64) {
    let source = trace.source();
    let config = SynthesisConfig::with_batch(BATCH);
    let spec = MessageSpec::new(4.0 * BATCH as f64 * SLICE, SLICE);
    let mut session = CutGenSession::new(trace.base(), source, SLICE, options.clone())
        .expect("trace base is solvable");
    let mut previous: Option<PeriodicSchedule> = None;
    let mut records = Vec::with_capacity(trace.len());
    let mut warm_ms = 0.0f64;
    let mut cold_ms = 0.0f64;
    for step in 0..trace.len() {
        let snapshot = trace.platform_at(step);
        let ((warm, schedule, report), warm_t) = bcast_obs::timed("drift.warm", || {
            let warm = session.solve_step(&snapshot).expect("warm step solvable");
            let (schedule, report) = match &previous {
                None => {
                    let s = synthesize_schedule(&snapshot, source, &warm.optimal, SLICE, &config)
                        .expect("synthesis succeeds");
                    (s, Default::default())
                }
                Some(prev) => {
                    resynthesize_schedule(&snapshot, source, &warm.optimal, SLICE, &config, prev)
                        .expect("repair succeeds")
                }
            };
            (warm, schedule, report)
        });
        // Wall-clock totals cover the *drift steps* only, matching the
        // pivot totals in the footer (step 0 is a cold start for both
        // sides and would dilute the comparison identically on each).
        if step > 0 {
            warm_ms += warm_t.as_secs_f64() * 1000.0;
        }
        let (cold, cold_t) = bcast_obs::timed("drift.cold", || {
            let cold = cut_gen::solve_with(
                &snapshot,
                source,
                SLICE,
                &CutGenOptions {
                    warm_start: false,
                    iteration_budget: Some(COLD_ITERATION_BUDGET),
                    ..options.clone()
                },
            )
            .expect("cold step solvable");
            // Built (and timed) so the cold side pays the same synthesis
            // cost the warm side's repair is being compared against.
            let _cold_schedule =
                synthesize_schedule(&snapshot, source, &cold.optimal, SLICE, &config)
                    .expect("cold synthesis succeeds");
            cold
        });
        if step > 0 {
            cold_ms += cold_t.as_secs_f64() * 1000.0;
        }
        bcast_obs::emit_with(|| bcast_obs::Event::DriftStep {
            step: step as u64,
            kind: "drift",
            warm_ns: warm_t.as_nanos() as u64,
            cold_ns: cold_t.as_nanos() as u64,
            tp_rel_err: tp_rel_err(warm.optimal.throughput, cold.optimal.throughput),
        });
        let sim = simulate_schedule(&snapshot, &schedule, &spec);
        records.push(StepRecord {
            step,
            tp: warm.optimal.throughput,
            warm_pivots: warm.optimal.simplex_iterations,
            cold_pivots: cold.optimal.simplex_iterations,
            warm_rounds: warm.optimal.iterations,
            cold_rounds: cold.optimal.iterations,
            reused_cuts: warm.reused_cuts,
            repair_ops: report.repair_ops(),
            kept_trees: report.kept_trees,
            efficiency: schedule.efficiency(),
            sim_tp: sim.batch_throughput(schedule.slices_per_period()),
        });
        previous = Some(schedule);
    }
    (records, warm_ms, cold_ms)
}

struct ChurnStepRecord {
    step: usize,
    tp: f64,
    warm_pivots: usize,
    cold_pivots: usize,
    warm_rounds: usize,
    cold_rounds: usize,
    reused_cuts: usize,
    repair_ops: usize,
    kept_trees: usize,
    grafted: usize,
    pruned: usize,
    efficiency: f64,
    sim_tp: f64,
}

/// Counts the trace's node-join and node-leave events.
fn churn_events(trace: &DriftTrace) -> (usize, usize) {
    let mut joins = 0usize;
    let mut leaves = 0usize;
    for step in 0..trace.len() {
        for event in &trace.step(step).events {
            match event {
                DriftEvent::NodeJoin(_) => joins += 1,
                DriftEvent::NodeLeave(_) => leaves += 1,
                _ => {}
            }
        }
    }
    (joins, leaves)
}

/// Generates a churn trace that exercises at least one join *and* one leave.
///
/// Leaves are reachability-guarded (a departure that would disconnect a
/// survivor is reverted), so on sparse Tiers topologies many candidate
/// leaves never land; this probes a bounded, deterministic seed window
/// until a trace with both event kinds appears so the ablation — and the
/// `--quick` CI smoke in particular — always measures genuine node churn.
fn churn_trace(platform: &Platform, join_rate: f64, leave_rate: f64, seed: u64) -> DriftTrace {
    for probe in 0..64u64 {
        let trace = DriftTrace::generate(
            platform,
            NodeId(0),
            &DriftConfig {
                join_rate,
                leave_rate,
                ..DriftConfig::with_failures(CHURN_STEPS, seed + 1000 * probe)
            },
        );
        let (joins, leaves) = churn_events(&trace);
        if joins > 0 && leaves > 0 {
            return trace;
        }
    }
    panic!("no seed in [{seed}, {seed} + 64000) produced both a join and a leave");
}

/// Walks one churn trace warm and cold, mirroring [`run_trace`] but across
/// node-set changes: the warm side carries the session through
/// `solve_step_churn` (cut-pool remap + LP column add/delete) and repairs
/// the schedule with `resynthesize_schedule_churn` (graft joiners, prune
/// leavers); the cold side re-solves and re-synthesizes from scratch.
fn run_churn_trace(
    trace: &DriftTrace,
    options: &CutGenOptions,
) -> (Vec<ChurnStepRecord>, f64, f64) {
    let config = SynthesisConfig::with_batch(BATCH);
    let spec = MessageSpec::new(4.0 * BATCH as f64 * SLICE, SLICE);
    let snap0 = trace.platform_at(0);
    let mut session = CutGenSession::new(&snap0, trace.source_at(0), SLICE, options.clone())
        .expect("step-0 platform solvable");
    let mut previous: Option<PeriodicSchedule> = None;
    let mut records = Vec::with_capacity(trace.len());
    let mut warm_ms = 0.0f64;
    let mut cold_ms = 0.0f64;
    for step in 0..trace.len() {
        let snapshot = trace.platform_at(step);
        let source = trace.source_at(step);
        let ((warm, schedule, report), warm_t) = bcast_obs::timed("churn.warm", || {
            let warm = if step == 0 {
                session.solve_step(&snapshot).expect("warm step solvable")
            } else {
                session
                    .solve_step_churn(&snapshot, &trace.remap(step - 1, step))
                    .expect("warm churn step solvable")
            };
            let (schedule, report) = match &previous {
                None => {
                    let s = synthesize_schedule(&snapshot, source, &warm.optimal, SLICE, &config)
                        .expect("synthesis succeeds");
                    (s, Default::default())
                }
                Some(prev) => resynthesize_schedule_churn(
                    &snapshot,
                    source,
                    &warm.optimal,
                    SLICE,
                    &config,
                    prev,
                    &trace.remap(step - 1, step),
                )
                .expect("churn repair succeeds"),
            };
            (warm, schedule, report)
        });
        if step > 0 {
            warm_ms += warm_t.as_secs_f64() * 1000.0;
        }
        let (cold, cold_t) = bcast_obs::timed("churn.cold", || {
            let cold = cut_gen::solve_with(
                &snapshot,
                source,
                SLICE,
                &CutGenOptions {
                    warm_start: false,
                    iteration_budget: Some(COLD_ITERATION_BUDGET),
                    ..options.clone()
                },
            )
            .expect("cold step solvable");
            let _cold_schedule =
                synthesize_schedule(&snapshot, source, &cold.optimal, SLICE, &config)
                    .expect("cold synthesis succeeds");
            cold
        });
        if step > 0 {
            cold_ms += cold_t.as_secs_f64() * 1000.0;
        }
        bcast_obs::emit_with(|| bcast_obs::Event::DriftStep {
            step: step as u64,
            kind: "churn",
            warm_ns: warm_t.as_nanos() as u64,
            cold_ns: cold_t.as_nanos() as u64,
            tp_rel_err: tp_rel_err(warm.optimal.throughput, cold.optimal.throughput),
        });
        let sim = simulate_schedule(&snapshot, &schedule, &spec);
        records.push(ChurnStepRecord {
            step,
            tp: warm.optimal.throughput,
            warm_pivots: warm.optimal.simplex_iterations,
            cold_pivots: cold.optimal.simplex_iterations,
            warm_rounds: warm.optimal.iterations,
            cold_rounds: cold.optimal.iterations,
            reused_cuts: warm.reused_cuts,
            repair_ops: report.repair_ops(),
            kept_trees: report.kept_trees,
            grafted: report.grafted_nodes,
            pruned: report.pruned_nodes,
            efficiency: schedule.efficiency(),
            sim_tp: sim.batch_throughput(schedule.slices_per_period()),
        });
        previous = Some(schedule);
    }
    (records, warm_ms, cold_ms)
}
