//! Figure 5: relative performance of the multi-port heuristics as a function
//! of the number of nodes, random platforms.
//!
//! The platforms carry the multi-port sender overheads of the paper
//! (`send_u = 0.8 · min_w T_{u,w}`); the heuristics are evaluated under the
//! multi-port model but compared — exactly as in the paper — to the one-port
//! MTP optimum, which is why ratios above 1 are possible.
//!
//! ```text
//! cargo run --release -p bcast-experiments --bin fig5 -- [--configs N] [--full] [--quick] [--csv out.csv]
//! ```

use bcast_core::heuristics::HeuristicKind;
use bcast_experiments::{
    aggregate_relative, finish_journal_or_exit, install_journal_or_exit, random_sweep,
    write_csv_or_exit, AsciiTable, ExperimentArgs, RandomSweepConfig,
};
use bcast_platform::CommModel;

/// The heuristics plotted in the paper's Figure 5, with the labels used there.
const FIG5_HEURISTICS: [(HeuristicKind, &str); 5] = [
    (HeuristicKind::PruneDegree, "Multi Port Prune Degree"),
    (HeuristicKind::GrowTree, "Multi Port Grow Tree"),
    (HeuristicKind::LpGrow, "LP Grow Tree"),
    (HeuristicKind::LpPrune, "LP Prune"),
    (HeuristicKind::Binomial, "Binomial Tree"),
];

fn main() {
    let args = ExperimentArgs::from_env(10);
    install_journal_or_exit(&args.journal, "fig5");
    let mut config = RandomSweepConfig {
        configs_per_point: args.configs,
        seed: args.seed,
        model: CommModel::MultiPort,
        multiport_overlap: Some(0.8),
        heuristics: FIG5_HEURISTICS.iter().map(|(h, _)| *h).collect(),
        ..RandomSweepConfig::default()
    };
    if args.quick {
        config.node_counts = vec![10, 20, 30];
        config.densities = vec![0.08, 0.16];
    }
    eprintln!(
        "fig5: {} node counts × {} densities × {} instances (multi-port, overlap 0.8)",
        config.node_counts.len(),
        config.densities.len(),
        config.configs_per_point
    );
    let records = random_sweep(&config);
    let aggregated = aggregate_relative(&records, |r| r.point.nodes);

    let mut header = vec!["nodes".to_string()];
    header.extend(FIG5_HEURISTICS.iter().map(|(_, label)| label.to_string()));
    let mut table = AsciiTable::new(header.clone());
    let mut csv_rows = Vec::new();
    for &nodes in &config.node_counts {
        let mut row = vec![nodes.to_string()];
        for (h, _) in FIG5_HEURISTICS {
            let value = aggregated
                .iter()
                .find(|(g, k, _, _)| *g == nodes && *k == h)
                .map(|(_, _, mean, _)| *mean)
                .unwrap_or(f64::NAN);
            row.push(format!("{value:.3}"));
        }
        csv_rows.push(row.clone());
        table.add_row(row);
    }

    println!(
        "\nFigure 5 — relative performance vs number of nodes (multi-port heuristics, one-port optimum)"
    );
    println!("{}", table.render());
    if let Some(path) = &args.csv {
        write_csv_or_exit(path, &header, &csv_rows);
    }
    finish_journal_or_exit();
}
