//! Headless driver for the crash-safe solver service (`bcast-service`).
//!
//! Opens (or re-opens) a service directory, creates one session from the
//! command-line spec if it does not exist yet, and walks its drift trace
//! to the end — drift steps, churn steps, periodic snapshots, a final
//! warm `Resolve` — printing one golden-trace line per completed step
//! with the throughput *bits* (exact, not rounded) and the pivot count.
//!
//! The `--kill-seq`/`--kill-kind` flags arm the service's fault injection:
//! when the kill fires the process exits with status 3, leaving the WAL
//! and snapshot artifacts exactly as a `SIGKILL` would. Re-running with
//! the same `--dir` recovers and continues; the CI smoke asserts the
//! concatenated golden lines of the killed+resumed run equal those of an
//! uninterrupted run.
//!
//! ```text
//! cargo run --release -p bcast-experiments --bin bcast_serviced -- \
//!     --dir /tmp/svc --family tiers --nodes 20 --steps 8 --seed 7025 \
//!     [--churn] [--snapshot-every K] [--kill-seq N --kill-kind mid-append]
//! ```

use bcast_service::{
    Command, FaultPlan, KillPoint, Outcome, PlatformFamily, Service, ServiceError, SessionSpec,
};
use std::path::PathBuf;
use std::process::ExitCode;

const SESSION: &str = "main";

struct Args {
    dir: PathBuf,
    family: String,
    nodes: usize,
    density: f64,
    steps: usize,
    seed: u64,
    churn: bool,
    snapshot_every: usize,
    kill: Option<KillPoint>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bcast_serviced --dir PATH [--family random|tiers|gaussian] [--nodes N] \
         [--density D] [--steps S] [--seed SEED] [--churn] [--snapshot-every K] \
         [--kill-seq N --kill-kind before-append|mid-append|before-exec|after-exec|mid-snapshot]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut dir = None;
    let mut family = "tiers".to_string();
    let mut nodes = 20usize;
    let mut density = 0.10f64;
    let mut steps = 8usize;
    let mut seed = 7025u64;
    let mut churn = false;
    let mut snapshot_every = 3usize;
    let mut kill_seq: Option<u64> = None;
    let mut kill_kind: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--dir" => dir = Some(PathBuf::from(value("--dir"))),
            "--family" => family = value("--family"),
            "--nodes" => nodes = value("--nodes").parse().unwrap_or_else(|_| usage()),
            "--density" => density = value("--density").parse().unwrap_or_else(|_| usage()),
            "--steps" => steps = value("--steps").parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--churn" => churn = true,
            "--snapshot-every" => {
                snapshot_every = value("--snapshot-every")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--kill-seq" => {
                kill_seq = Some(value("--kill-seq").parse().unwrap_or_else(|_| usage()))
            }
            "--kill-kind" => kill_kind = Some(value("--kill-kind")),
            _ => {
                eprintln!("unknown flag {flag}");
                usage()
            }
        }
    }
    let kill = match (kill_seq, kill_kind.as_deref()) {
        (None, None) => None,
        (Some(seq), Some(kind)) => Some(match kind {
            "before-append" => KillPoint::BeforeAppend(seq),
            "mid-append" => KillPoint::MidAppend(seq),
            "before-exec" => KillPoint::BeforeExec(seq),
            "after-exec" => KillPoint::AfterExec(seq),
            "mid-snapshot" => KillPoint::MidSnapshotWrite(seq),
            _ => usage(),
        }),
        _ => usage(),
    };
    Args {
        dir: dir.unwrap_or_else(|| usage()),
        family,
        nodes,
        density,
        steps,
        seed,
        churn,
        snapshot_every,
        kill,
    }
}

fn spec_of(args: &Args) -> SessionSpec {
    let family = match args.family.as_str() {
        "random" => PlatformFamily::Random {
            nodes: args.nodes,
            density: args.density,
        },
        "tiers" => PlatformFamily::Tiers {
            nodes: args.nodes,
            density: args.density,
        },
        "gaussian" => PlatformFamily::Gaussian { nodes: args.nodes },
        _ => usage(),
    };
    SessionSpec {
        family,
        platform_seed: args.seed,
        slice_size: 1.0e6,
        batch: 16,
        drift_steps: args.steps,
        drift_seed: args.seed ^ 0xC4A1,
        churn: args.churn,
    }
}

/// Exit status 3: the armed kill point fired. The artifacts under
/// `--dir` are exactly what a crash would leave; re-running recovers.
const EXIT_KILLED: u8 = 3;

fn main() -> ExitCode {
    let args = parse_args();
    let fault = args
        .kill
        .map(FaultPlan::kill_at)
        .unwrap_or_else(FaultPlan::none);
    let mut service = match Service::open(&args.dir, fault) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("open failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let recovery = service.recovery().clone();
    eprintln!(
        "recovered: snapshot_restored={} snapshot_rejected={} replayed={} wal_torn={}",
        recovery.snapshot_restored,
        recovery.snapshot_rejected,
        recovery.replayed,
        recovery.wal_torn
    );

    if service.session(SESSION).is_none() {
        match drive(
            &mut service,
            &Command::CreateSession {
                name: SESSION.into(),
                spec: spec_of(&args),
            },
        ) {
            Ok(()) => {}
            Err(code) => return code,
        }
    }

    loop {
        let session = service.session(SESSION).expect("created above");
        let done = session.steps_done();
        if done >= session.trace_len() {
            break;
        }
        let command = if session.next_step_is_churn() {
            Command::NodeChurn {
                session: SESSION.into(),
            }
        } else {
            Command::DriftStep {
                session: SESSION.into(),
            }
        };
        if let Err(code) = drive(&mut service, &command) {
            return code;
        }
        if args.snapshot_every > 0 && (done + 1) % args.snapshot_every == 0 {
            if let Err(code) = drive(&mut service, &Command::Snapshot) {
                return code;
            }
        }
    }
    for command in [
        Command::Resolve {
            session: SESSION.into(),
        },
        Command::QuerySchedule {
            session: SESSION.into(),
        },
    ] {
        if let Err(code) = drive(&mut service, &command) {
            return code;
        }
    }

    // The golden trace: the full per-step log, with exact f64 bits. A
    // killed-and-resumed run must print exactly these lines.
    let session = service.session(SESSION).expect("created above");
    for s in session.log() {
        println!(
            "step={} tp_bits={:016x} pivots={} rounds={} reused={} kept={} repairs={} \
             grafted={} pruned={} eff_bits={:016x} sim_tp_bits={:016x}",
            s.step,
            s.tp.to_bits(),
            s.pivots,
            s.rounds,
            s.reused_cuts,
            s.kept_trees,
            s.repair_ops,
            s.grafted,
            s.pruned,
            s.efficiency.to_bits(),
            s.sim_tp.to_bits()
        );
    }
    // `next_seq` is diagnostics, not golden output: a killed Snapshot
    // command is not re-issued on resume (the cadence is derived from
    // `steps_done`), so the WAL length may legitimately differ between an
    // uninterrupted run and a killed+resumed one. Solver state may not.
    println!("final steps={}", session.steps_done());
    eprintln!("next_seq={}", service.next_seq());
    ExitCode::SUCCESS
}

/// Applies one command; maps an injected kill to exit status 3 and any
/// other error to a failure. Outcomes are narrated to stderr (the golden
/// stdout carries only the step log).
fn drive(service: &mut Service, command: &Command) -> Result<(), ExitCode> {
    match service.apply(command) {
        Ok(Outcome::Rejected { reason }) => {
            eprintln!("rejected: {reason}");
            Ok(())
        }
        Ok(outcome) => {
            eprintln!("applied seq={}: {outcome:?}", service.next_seq() - 1);
            Ok(())
        }
        Err(ServiceError::Killed(point)) => {
            eprintln!("killed at {point:?}");
            Err(ExitCode::from(EXIT_KILLED))
        }
        Err(e) => {
            eprintln!("command failed: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}
