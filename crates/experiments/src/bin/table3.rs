//! Table 3: relative performance of the one-port heuristics on Tiers-like
//! platforms with 30 and 65 nodes (mean ± deviation over the instances).
//!
//! ```text
//! cargo run --release -p bcast-experiments --bin table3 -- [--configs N] [--full] [--csv out.csv]
//! ```
//!
//! `--full` uses the paper's 100 platforms per size; the default keeps the
//! run to a few instances so the table regenerates in minutes.

use bcast_core::heuristics::HeuristicKind;
use bcast_experiments::{
    aggregate_relative, finish_journal_or_exit, install_journal_or_exit, print_solver_stats,
    solver_totals, tiers_sweep, write_csv_or_exit, AsciiTable, ExperimentArgs, TiersSweepConfig,
};

/// Column order of the paper's Table 3.
const TABLE3_HEURISTICS: [HeuristicKind; 6] = [
    HeuristicKind::PruneSimple,
    HeuristicKind::PruneDegree,
    HeuristicKind::GrowTree,
    HeuristicKind::LpGrow,
    HeuristicKind::LpPrune,
    HeuristicKind::Binomial,
];

fn main() {
    let args = ExperimentArgs::from_env(100);
    install_journal_or_exit(&args.journal, "table3");
    let mut config = TiersSweepConfig {
        configs_per_point: args.configs,
        seed: args.seed,
        heuristics: TABLE3_HEURISTICS.to_vec(),
        ..TiersSweepConfig::default()
    };
    if args.quick {
        config.node_counts = vec![30];
    }
    eprintln!(
        "table3: Tiers platforms with {:?} nodes, {} instances each (one-port)",
        config.node_counts, config.configs_per_point
    );
    let records = tiers_sweep(&config);
    let (instances, rounds, pivots) = solver_totals(&records);
    print_solver_stats("table3", instances, rounds, pivots);
    let aggregated = aggregate_relative(&records, |r| r.point.nodes);

    let mut header = vec!["nodes".to_string()];
    header.extend(TABLE3_HEURISTICS.iter().map(|h| h.label().to_string()));
    let mut table = AsciiTable::new(header.clone());
    let mut csv_rows = Vec::new();
    for &nodes in &config.node_counts {
        let mut row = vec![nodes.to_string()];
        for h in TABLE3_HEURISTICS {
            let cell = aggregated
                .iter()
                .find(|(g, k, _, _)| *g == nodes && *k == h)
                .map(|(_, _, mean, dev)| format!("{:.0}% (±{:.0}%)", mean * 100.0, dev * 100.0))
                .unwrap_or_else(|| "n/a".to_string());
            row.push(cell);
        }
        csv_rows.push(row.clone());
        table.add_row(row);
    }

    println!("\nTable 3 — one-port heuristics on Tiers-like platforms (mean ± deviation)");
    println!("{}", table.render());
    if let Some(path) = &args.csv {
        write_csv_or_exit(path, &header, &csv_rows);
    }
    finish_journal_or_exit();
}
