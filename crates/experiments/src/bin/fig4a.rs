//! Figure 4(a): relative performance of the heuristics as a function of the
//! number of nodes, one-port model, random platforms.
//!
//! For each node count in {10, 20, 30, 40, 50} the sweep averages the
//! relative performance (heuristic throughput / MTP optimal throughput) over
//! all densities {0.04 … 0.20} and all platform instances.
//!
//! ```text
//! cargo run --release -p bcast-experiments --bin fig4a -- [--configs N] [--full] [--quick] [--csv out.csv]
//! ```

use bcast_core::heuristics::HeuristicKind;
use bcast_experiments::{
    aggregate_relative, finish_journal_or_exit, install_journal_or_exit, random_sweep,
    write_csv_or_exit, AsciiTable, ExperimentArgs, RandomSweepConfig,
};

fn main() {
    let args = ExperimentArgs::from_env(10);
    install_journal_or_exit(&args.journal, "fig4a");
    let mut config = RandomSweepConfig {
        configs_per_point: args.configs,
        seed: args.seed,
        ..RandomSweepConfig::default()
    };
    if args.quick {
        config.node_counts = vec![10, 20, 30];
        config.densities = vec![0.08, 0.16];
    }
    eprintln!(
        "fig4a: {} node counts × {} densities × {} instances (one-port)",
        config.node_counts.len(),
        config.densities.len(),
        config.configs_per_point
    );
    let records = random_sweep(&config);
    let aggregated = aggregate_relative(&records, |r| r.point.nodes);

    let mut header = vec!["nodes".to_string()];
    header.extend(HeuristicKind::ALL.iter().map(|h| h.label().to_string()));
    let mut table = AsciiTable::new(header.clone());
    let mut csv_rows = Vec::new();
    for &nodes in &config.node_counts {
        let mut row = vec![nodes.to_string()];
        for h in HeuristicKind::ALL {
            let value = aggregated
                .iter()
                .find(|(g, k, _, _)| *g == nodes && *k == h)
                .map(|(_, _, mean, _)| *mean)
                .unwrap_or(f64::NAN);
            row.push(format!("{value:.3}"));
        }
        csv_rows.push(row.clone());
        table.add_row(row);
    }

    println!("\nFigure 4(a) — relative performance vs number of nodes (one-port)");
    println!("{}", table.render());
    if let Some(path) = &args.csv {
        write_csv_or_exit(path, &header, &csv_rows);
    }
    finish_journal_or_exit();
}
