//! `table_sched`: single-tree heuristics vs the synthesized multi-round
//! periodic schedule, on three platform families.
//!
//! For every `(family, nodes)` point this sweep solves the MTP optimal
//! throughput (cut generation, chaining binding cuts across the instances
//! of the point), evaluates every single-tree heuristic analytically, then
//! synthesizes the periodic schedule from the LP edge loads
//! (`bcast-sched`) and *simulates* it with the schedule-driven execution
//! mode of `bcast-sim`. Reported numbers are relative to the LP optimum,
//! so "sched" close to 1.00 demonstrates that the LP bound is actually
//! achievable by an executable schedule — the paper's optimality story
//! made operational.
//!
//! ```text
//! cargo run --release -p bcast-experiments --bin table_sched -- [--configs N] [--quick] [--csv out.csv]
//! ```

use bcast_core::evaluation::mean_and_deviation;
use bcast_core::heuristics::{build_structure_with_loads, HeuristicKind};
use bcast_core::optimal::cut_gen;
use bcast_core::throughput::steady_state_throughput;
use bcast_core::{CutGenOptions, NodeCutSet};
use bcast_experiments::{
    finish_journal_or_exit, install_journal_or_exit, print_solver_stats, write_csv_or_exit,
    AsciiTable, ExperimentArgs,
};
use bcast_net::NodeId;
use bcast_platform::generators::gaussian_field::{gaussian_platform, GaussianPlatformConfig};
use bcast_platform::generators::random::{random_platform, RandomPlatformConfig};
use bcast_platform::generators::tiers::{tiers_platform, TiersConfig};
use bcast_platform::{CommModel, MessageSpec, Platform};
use bcast_sched::{synthesize_schedule_with_tree_fallback, SynthesisConfig};
use bcast_sim::simulate_schedule;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SLICE: f64 = 1.0e6;

/// The platform families of the sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Family {
    Random,
    Tiers,
    Gaussian,
}

impl Family {
    const ALL: [Family; 3] = [Family::Random, Family::Tiers, Family::Gaussian];

    fn label(self) -> &'static str {
        match self {
            Family::Random => "Random",
            Family::Tiers => "Tiers",
            Family::Gaussian => "Gaussian",
        }
    }

    fn generate(self, nodes: usize, seed: u64) -> Platform {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            Family::Random => random_platform(&RandomPlatformConfig::paper(nodes, 0.12), &mut rng),
            Family::Tiers => tiers_platform(&TiersConfig::paper(nodes, 0.10), &mut rng),
            Family::Gaussian => gaussian_platform(&GaussianPlatformConfig::paper(nodes), &mut rng),
        }
    }
}

struct InstanceResult {
    best_rel: f64,
    best_label: &'static str,
    sched_rel: f64,
    batch: usize,
    rounds: usize,
    max_lag: usize,
    lp_rounds: usize,
    lp_pivots: usize,
}

fn run_instance(
    platform: &Platform,
    seed_cuts: Vec<NodeCutSet>,
) -> (InstanceResult, Vec<NodeCutSet>) {
    let source = NodeId(0);
    let options = CutGenOptions {
        seed_cuts,
        ..CutGenOptions::default()
    };
    let solved = cut_gen::solve_with(platform, source, SLICE, &options).expect("solvable instance");
    let optimal = &solved.optimal;

    // Best single-tree heuristic, analytically.
    let mut best_rel = 0.0;
    let mut best_label = "n/a";
    let mut candidates = Vec::new();
    for kind in HeuristicKind::ALL {
        let Ok(structure) = build_structure_with_loads(
            platform,
            source,
            kind,
            CommModel::OnePort,
            SLICE,
            Some(optimal),
        ) else {
            continue;
        };
        let tp = steady_state_throughput(platform, &structure, CommModel::OnePort, SLICE);
        if tp / optimal.throughput > best_rel {
            best_rel = tp / optimal.throughput;
            best_label = kind.label();
        }
        candidates.push(structure);
    }

    // Synthesize the periodic schedule (falling back to the best tree when
    // it is exact) and simulate it.
    let schedule = synthesize_schedule_with_tree_fallback(
        platform,
        source,
        optimal,
        SLICE,
        &SynthesisConfig::default(),
        &candidates,
    )
    .expect("schedule synthesis succeeds");
    let batch = schedule.slices_per_period();
    let spec = MessageSpec::new(8.0 * batch as f64 * SLICE, SLICE);
    let report = simulate_schedule(platform, &schedule, &spec);
    let sched_rel = report.batch_throughput(batch) / optimal.throughput;

    (
        InstanceResult {
            best_rel,
            best_label,
            sched_rel,
            batch,
            rounds: schedule.rounds().len(),
            max_lag: schedule.max_lag(),
            lp_rounds: optimal.iterations,
            lp_pivots: optimal.simplex_iterations,
        },
        solved.binding_cuts,
    )
}

fn main() {
    let args = ExperimentArgs::from_env(10);
    install_journal_or_exit(&args.journal, "table_sched");
    let node_counts: &[usize] = if args.quick { &[20] } else { &[20, 30] };
    eprintln!(
        "table_sched: heuristic trees vs synthesized schedule, {:?} nodes, {} instances per point",
        node_counts, args.configs
    );

    let header = vec![
        "family".to_string(),
        "nodes".to_string(),
        "best tree".to_string(),
        "best rel".to_string(),
        "sched rel".to_string(),
        "sched/best".to_string(),
        "B".to_string(),
        "rounds".to_string(),
        "lag".to_string(),
    ];
    let mut table = AsciiTable::new(header.clone());
    let mut csv_rows = Vec::new();
    let mut lp_instances = 0usize;
    let mut lp_rounds = 0usize;
    let mut lp_pivots = 0usize;
    for family in Family::ALL {
        for &nodes in node_counts {
            let mut best_rels = Vec::new();
            let mut sched_rels = Vec::new();
            let mut batches = Vec::new();
            let mut rounds = Vec::new();
            let mut max_lag = 0usize;
            // Winning-heuristic tally: the reported label is the heuristic
            // that won the most instances (ties: first to reach the count).
            let mut label_wins: Vec<(&'static str, usize)> = Vec::new();
            let mut carried: Vec<NodeCutSet> = Vec::new();
            for instance in 0..args.configs {
                let seed = args
                    .seed
                    .wrapping_add((nodes as u64) << 16)
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(family as u64 * 7919)
                    .wrapping_add(instance as u64);
                let platform = family.generate(nodes, seed);
                let (result, binding) = run_instance(&platform, carried);
                carried = binding;
                best_rels.push(result.best_rel);
                sched_rels.push(result.sched_rel);
                batches.push(result.batch as f64);
                rounds.push(result.rounds as f64);
                max_lag = max_lag.max(result.max_lag);
                lp_instances += 1;
                lp_rounds += result.lp_rounds;
                lp_pivots += result.lp_pivots;
                match label_wins.iter_mut().find(|(l, _)| *l == result.best_label) {
                    Some((_, count)) => *count += 1,
                    None => label_wins.push((result.best_label, 1)),
                }
            }
            let best_label = label_wins
                .iter()
                .max_by_key(|(_, count)| *count)
                .map_or("n/a", |(label, _)| *label);
            let (best_mean, _) = mean_and_deviation(&best_rels);
            let (sched_mean, sched_dev) = mean_and_deviation(&sched_rels);
            let (batch_mean, _) = mean_and_deviation(&batches);
            let (rounds_mean, _) = mean_and_deviation(&rounds);
            let row = vec![
                family.label().to_string(),
                nodes.to_string(),
                best_label.to_string(),
                format!("{best_mean:.3}"),
                format!("{sched_mean:.3} (±{sched_dev:.3})"),
                format!("{:.2}x", sched_mean / best_mean.max(1e-12)),
                format!("{batch_mean:.0}"),
                format!("{rounds_mean:.0}"),
                max_lag.to_string(),
            ];
            csv_rows.push(row.clone());
            table.add_row(row);
        }
    }

    print_solver_stats("table_sched", lp_instances, lp_rounds, lp_pivots);
    println!("\ntable_sched — single-tree heuristics vs synthesized periodic schedule (one-port, relative to LP optimum)");
    println!("{}", table.render());
    if let Some(path) = &args.csv {
        write_csv_or_exit(path, &header, &csv_rows);
    }
    finish_journal_or_exit();
}
