//! **Ablation 7** — the master-LP simplex engine: dense full tableau vs the
//! sparse revised simplex (Markowitz LU basis), and Devex vs Dantzig vs
//! Forrest–Goldfarb steepest-edge pricing, across platform sizes up to
//! 1000 nodes on all three families.
//!
//! Three modes:
//!
//! ```text
//! # The ablation table (default n ≤ 500; --quick restricts to n ≤ 65,
//! # --full adds the dense engine at 130 nodes and the 1000-node points):
//! cargo run --release -p bcast-experiments --bin bench_simplex
//!
//! # Write the machine-readable perf baseline (Tiers-65 and Tiers-500 cut
//! # generation, sparse engine, min wall-clock of three runs per point):
//! cargo run --release -p bcast-experiments --bin bench_simplex -- --emit-baseline BENCH_simplex.json
//!
//! # CI perf-regression smoke: fail (exit 1) when any measured point's
//! # cut-generation wall-clock exceeds 2x its committed baseline:
//! cargo run --release -p bcast-experiments --bin bench_simplex -- --check-baseline BENCH_simplex.json
//! ```
//!
//! The baseline file is flat JSON written and parsed here (the workspace
//! vendors no JSON crate); values other than `cutgen_ms` are informational.

use bcast_core::optimal::cut_gen;
use bcast_core::{CutGenOptions, PricingRule, SimplexEngine};
use bcast_experiments::{finish_journal_or_exit, install_journal_or_exit, AsciiTable};
use bcast_net::NodeId;
use bcast_platform::generators::random::{random_platform, RandomPlatformConfig};
use bcast_platform::generators::tiers::{tiers_platform, TiersConfig};
use bcast_platform::generators::{gaussian_platform, GaussianPlatformConfig};
use bcast_platform::Platform;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SLICE: f64 = 1.0e6;
/// The perf-baseline points: Tiers platforms whose cut-generation
/// wall-clock the CI smoke guards. Each entry is `(nodes, rng seed)` —
/// Tiers-65 pins the interactive regime, Tiers-500 the scaling regime the
/// Markowitz-LU engine opened up. Densities come from [`density_for`].
const BASELINE_POINTS: [(usize, u64); 2] = [(65, 65), (500, 500)];
/// The CI smoke fails when the measured wall-clock exceeds this multiple of
/// the committed baseline (the baseline is emitted on a developer machine,
/// so the factor doubles as hardware slack; a real regression — the dense
/// engine was 34x slower on the Tiers-65 point — blows far past it).
const REGRESSION_FACTOR: f64 = 2.0;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut quick = false;
    let mut full = false;
    let mut seed = 2004u64;
    let mut emit: Option<String> = None;
    let mut check: Option<String> = None;
    let mut journal: Option<String> = None;
    let mut family: Option<String> = None;
    let mut nodes: Option<usize> = None;
    let mut pricing: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--full" => full = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"))
            }
            "--family" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--family needs a name"));
                if !["random", "tiers", "gaussian"].contains(&v.as_str()) {
                    usage(&format!("unknown family: {v}"));
                }
                family = Some(v);
            }
            "--nodes" => {
                nodes = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--nodes needs a number")),
                )
            }
            "--pricing" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--pricing needs a rule"));
                if !["devex", "dantzig", "steepest"].contains(&v.as_str()) {
                    usage(&format!("unknown pricing rule: {v}"));
                }
                pricing = Some(v);
            }
            "--journal" => {
                journal = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--journal needs a path")),
                )
            }
            "--emit-baseline" => {
                emit = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--emit-baseline needs a path")),
                )
            }
            "--check-baseline" => {
                check = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--check-baseline needs a path")),
                )
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    install_journal_or_exit(&journal, "bench_simplex");
    if let Some(path) = emit {
        emit_baseline(&path);
    } else if let Some(path) = check {
        check_baseline(&path);
    } else {
        ablation_table(
            quick,
            full,
            seed,
            family.as_deref(),
            nodes,
            pricing.as_deref(),
        );
    }
    finish_journal_or_exit();
}

fn usage(message: &str) -> ! {
    if !message.is_empty() {
        eprintln!("{message}");
    }
    eprintln!(
        "usage: bench_simplex [--quick|--full] [--seed S] \
         [--family random|tiers|gaussian] [--nodes N] \
         [--pricing devex|dantzig|steepest] [--journal PATH] \
         [--emit-baseline PATH | --check-baseline PATH]"
    );
    std::process::exit(2);
}

/// One timed cut-generation run; returns `(tp, pivots, rounds, seconds)`.
fn run(
    platform: &Platform,
    engine: SimplexEngine,
    pricing: PricingRule,
) -> (f64, usize, usize, f64) {
    let (r, elapsed) = bcast_obs::timed("bench.cutgen", || {
        cut_gen::solve_with(
            platform,
            NodeId(0),
            SLICE,
            &CutGenOptions {
                lp_engine: engine,
                pricing,
                ..CutGenOptions::default()
            },
        )
        .expect("solvable instance")
    });
    (
        r.optimal.throughput,
        r.optimal.simplex_iterations,
        r.optimal.iterations,
        elapsed.as_secs_f64(),
    )
}

fn density_for(nodes: usize) -> f64 {
    match nodes {
        0..=24 => 0.12,
        25..=80 => 0.06,
        81..=150 => 0.04,
        _ => 0.03,
    }
}

fn make_platform(family: &str, nodes: usize, seed: u64) -> Platform {
    let mut rng = StdRng::seed_from_u64(seed + nodes as u64);
    match family {
        "random" => random_platform(
            &RandomPlatformConfig::paper(nodes, density_for(nodes)),
            &mut rng,
        ),
        "tiers" => tiers_platform(&TiersConfig::paper(nodes, density_for(nodes)), &mut rng),
        "gaussian" => gaussian_platform(&GaussianPlatformConfig::paper(nodes), &mut rng),
        _ => unreachable!(),
    }
}

/// Ablation 7: dense vs sparse vs pricing rule, per family and size.
/// `family_filter`/`nodes_filter`/`pricing_filter` restrict the table to
/// one family, size, and/or pricing rule (handy for producing a
/// single-point `--journal`, e.g. the Tiers-130 profile EXPERIMENTS.md
/// walks through, or for running the hour-scale Tiers-1000 point with one
/// rule only).
fn ablation_table(
    quick: bool,
    full: bool,
    seed: u64,
    family_filter: Option<&str>,
    nodes_filter: Option<usize>,
    pricing_filter: Option<&str>,
) {
    println!(
        "Ablation 7 — master-LP engine: dense tableau vs sparse revised simplex (Markowitz-LU basis)"
    );
    println!(
        "(dense runs are limited to n ≤ {} — the dense tableau is the scaling wall this ablation documents)",
        if full { 130 } else { 65 }
    );
    let size_override = nodes_filter.map(|n| [n]);
    let sizes: &[usize] = match &size_override {
        Some(one) => &one[..],
        None if quick => &[20, 65],
        None if full => &[20, 65, 130, 200, 500, 1000],
        None => &[20, 65, 130, 200, 500],
    };
    let mut table = AsciiTable::new(vec![
        "family",
        "nodes",
        "engine",
        "TP rel. gap",
        "pivots",
        "rounds",
        "wall ms",
    ]);
    for family in ["random", "tiers", "gaussian"] {
        if family_filter.is_some_and(|f| f != family) {
            continue;
        }
        for &nodes in sizes {
            let platform = make_platform(family, nodes, seed);
            let dense_cap = if full { 130 } else { 65 };
            let mut reference: Option<f64> = None;
            for (label, engine, pricing) in [
                ("sparse devex", SimplexEngine::Sparse, PricingRule::Devex),
                (
                    "sparse steepest",
                    SimplexEngine::Sparse,
                    PricingRule::SteepestEdge,
                ),
                (
                    "sparse dantzig",
                    SimplexEngine::Sparse,
                    PricingRule::Dantzig,
                ),
                ("dense", SimplexEngine::Dense, PricingRule::Devex),
            ] {
                if engine == SimplexEngine::Dense && nodes > dense_cap {
                    continue;
                }
                let rule_name = match pricing {
                    PricingRule::Devex => "devex",
                    PricingRule::Dantzig => "dantzig",
                    PricingRule::SteepestEdge => "steepest",
                };
                if pricing_filter.is_some_and(|p| p != rule_name) {
                    continue;
                }
                // Dantzig at 200 nodes is ~10x the Devex wall-clock; keep
                // the default table responsive.
                if pricing == PricingRule::Dantzig && nodes > 130 && !full {
                    continue;
                }
                let (tp, pivots, rounds, secs) = run(&platform, engine, pricing);
                let gap = match reference {
                    None => {
                        reference = Some(tp);
                        0.0
                    }
                    Some(r) => (tp - r).abs() / r.max(1e-12),
                };
                table.add_row(vec![
                    family.to_string(),
                    nodes.to_string(),
                    label.to_string(),
                    format!("{gap:.1e}"),
                    pivots.to_string(),
                    rounds.to_string(),
                    format!("{:.1}", secs * 1e3),
                ]);
            }
        }
    }
    println!("{}", table.render());
}

/// Measures one baseline point: Tiers-`nodes` cut generation, sparse
/// engine, minimum wall-clock over three runs (the minimum is the least
/// noisy estimator of the achievable time). The 500-node point runs once —
/// its solve is long enough that timer noise is negligible and three runs
/// would dominate the CI smoke's wall-clock.
fn measure_baseline(nodes: usize, seed: u64) -> (f64, usize, usize, f64) {
    let runs = if nodes >= 300 { 1 } else { 3 };
    let platform = make_platform("tiers", nodes, seed - nodes as u64);
    let mut best: Option<(f64, usize, usize, f64)> = None;
    for _ in 0..runs {
        let sample = run(&platform, SimplexEngine::Sparse, PricingRule::Devex);
        if best.is_none_or(|b| sample.3 < b.3) {
            best = Some(sample);
        }
    }
    best.expect("three samples taken")
}

fn emit_baseline(path: &str) {
    let mut json = String::from(
        "{\n  \"schema\": \"bench_simplex/2\",\n  \"engine\": \"sparse-devex\",\n  \"points\": [\n",
    );
    for (i, &(nodes, seed)) in BASELINE_POINTS.iter().enumerate() {
        let (tp, pivots, rounds, secs) = measure_baseline(nodes, seed);
        let comma = if i + 1 < BASELINE_POINTS.len() {
            ","
        } else {
            ""
        };
        json.push_str(&format!(
            "    {{ \"point\": \"tiers-{nodes}\", \"seed\": {seed}, \"density\": {}, \
             \"cutgen_ms\": {:.3}, \"pivots\": {pivots}, \"rounds\": {rounds}, \
             \"throughput\": {tp:.7} }}{comma}\n",
            density_for(nodes),
            secs * 1e3
        ));
        println!(
            "tiers-{nodes} cut generation: {:.3} ms ({pivots} pivots, {rounds} rounds)",
            secs * 1e3
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("baseline written to {path}");
}

/// Reads the `(point, cutgen_ms)` pairs from the flat baseline JSON: a
/// `\"point\"` field names the entry, the next `\"cutgen_ms\"` field supplies
/// its wall-clock. Accepts both the schema/1 (single-object) and schema/2
/// (points-array) layouts since each point's fields sit on one line.
fn read_baseline_points(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let mut points = Vec::new();
    let mut current: Option<String> = None;
    for token in text.split(',').flat_map(|t| t.split('\n')) {
        let token = token.trim().trim_start_matches('{').trim();
        if let Some(rest) = token.strip_prefix("\"point\":") {
            current = Some(rest.trim().trim_matches('\"').to_string());
        } else if let Some(rest) = token.strip_prefix("\"cutgen_ms\":") {
            if let (Some(name), Ok(ms)) = (current.take(), rest.trim().parse::<f64>()) {
                points.push((name, ms));
            }
        }
    }
    if points.is_empty() {
        eprintln!("{path}: no parsable (point, cutgen_ms) pairs");
        std::process::exit(1);
    }
    points
}

fn check_baseline(path: &str) {
    let mut failed = false;
    for (name, baseline_ms) in read_baseline_points(path) {
        let Some(&(nodes, seed)) = BASELINE_POINTS
            .iter()
            .find(|(n, _)| format!("tiers-{n}") == name)
        else {
            eprintln!("{path}: unknown baseline point {name}; re-emit the baseline");
            std::process::exit(1);
        };
        let (_, pivots, rounds, secs) = measure_baseline(nodes, seed);
        let measured_ms = secs * 1e3;
        let limit_ms = baseline_ms * REGRESSION_FACTOR;
        println!(
            "{name} cut generation: measured {measured_ms:.1} ms \
             ({pivots} pivots, {rounds} rounds) vs committed baseline {baseline_ms:.1} ms \
             (limit {limit_ms:.1} ms)"
        );
        if measured_ms > limit_ms {
            eprintln!(
                "PERF REGRESSION: {name} at {measured_ms:.1} ms exceeds {REGRESSION_FACTOR}x the \
                 committed baseline ({baseline_ms:.1} ms); re-emit BENCH_simplex.json only for an \
                 intentional change"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("within budget");
}
