//! Ablations of the design choices called out in DESIGN.md:
//!
//! 1. **Optimal solver** — direct LP (2) vs the cut-generation reformulation:
//!    value agreement and wall-clock time as the platform grows.
//! 2. **Pruning metric** — maximum edge weight (Algorithm 1) vs weighted
//!    out-degree (Algorithm 2): the throughput gap the refined metric buys.
//! 3. **Multi-port overlap sensitivity** — the paper fixes
//!    `send_u = 0.8 · min_w T_{u,w}` and claims the results "do not strongly
//!    depend" on the factor; we sweep it.
//! 4. **Schedule resolution** — the batch size `B` of the synthesized
//!    periodic schedule trades rounding loss (`≈ TP·D/B`) against schedule
//!    size; we sweep `B` and report the achieved fraction of the LP bound.
//! 5. **Master-LP warm start** — the cut-generation master re-optimized by
//!    warm-started dual simplex (one persistent basis across rounds) vs a
//!    from-scratch re-solve every round: value agreement, total simplex
//!    pivots, and wall-clock on the Tiers sweep points.
//!
//! Ablation 6 (dynamic platforms) lives in the `drift` binary and
//! ablation 7 (dense tableau vs sparse revised simplex vs pricing rule)
//! in the `bench_simplex` binary.
//!
//! ```text
//! cargo run --release -p bcast-experiments --bin ablation -- [--configs N] [--seed S]
//! ```

use bcast_core::evaluation::mean_and_deviation;
use bcast_core::heuristics::{build_structure, HeuristicKind};
use bcast_core::optimal::{optimal_throughput, OptimalMethod};
use bcast_core::throughput::steady_state_throughput;
use bcast_experiments::{
    finish_journal_or_exit, install_journal_or_exit, AsciiTable, ExperimentArgs,
};
use bcast_net::NodeId;
use bcast_platform::generators::random::{random_platform, RandomPlatformConfig};
use bcast_platform::CommModel;
use bcast_sched::{synthesize_schedule, SynthesisConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SLICE: f64 = 1.0e6;

fn main() {
    let args = ExperimentArgs::from_env(10);
    install_journal_or_exit(&args.journal, "ablation");
    solver_ablation(&args);
    pruning_metric_ablation(&args);
    overlap_sensitivity(&args);
    schedule_resolution(&args);
    warm_start_ablation(&args);
    finish_journal_or_exit();
}

/// Ablation 5: warm-started dual simplex vs cold re-solves in the
/// cut-generation master, on the Tiers sweep points (n = 20/40/65).
fn warm_start_ablation(args: &ExperimentArgs) {
    use bcast_core::optimal::cut_gen;
    use bcast_core::CutGenOptions;
    use bcast_platform::generators::tiers::{tiers_platform, TiersConfig};

    println!(
        "Ablation 5 — master-LP warm start: dual simplex from the prior basis vs cold re-solves"
    );
    let mut table = AsciiTable::new(vec![
        "nodes",
        "TP rel. gap",
        "warm pivots",
        "cold pivots",
        "pivot ratio",
        "warm rounds",
        "cold rounds",
        "warm ms",
        "cold ms",
    ]);
    let sizes: &[usize] = if args.quick { &[20] } else { &[20, 40, 65] };
    for &nodes in sizes {
        let density = if nodes <= 40 { 0.10 } else { 0.06 };
        let mut rng = StdRng::seed_from_u64(args.seed + nodes as u64);
        let platform = tiers_platform(&TiersConfig::paper(nodes, density), &mut rng);
        let run = |warm_start: bool| {
            let name = if warm_start {
                "ablation.warm"
            } else {
                "ablation.cold"
            };
            let (result, elapsed) = bcast_obs::timed(name, || {
                cut_gen::solve_with(
                    &platform,
                    NodeId(0),
                    SLICE,
                    &CutGenOptions {
                        warm_start,
                        ..CutGenOptions::default()
                    },
                )
                .expect("solvable instance")
            });
            (result.optimal, elapsed.as_secs_f64() * 1000.0)
        };
        let (warm, warm_ms) = run(true);
        let (cold, cold_ms) = run(false);
        let gap = (warm.throughput - cold.throughput).abs() / cold.throughput.max(1e-12);
        table.add_row(vec![
            nodes.to_string(),
            format!("{gap:.2e}"),
            warm.simplex_iterations.to_string(),
            cold.simplex_iterations.to_string(),
            format!(
                "{:.1}x",
                cold.simplex_iterations as f64 / warm.simplex_iterations.max(1) as f64
            ),
            warm.iterations.to_string(),
            cold.iterations.to_string(),
            format!("{warm_ms:.1}"),
            format!("{cold_ms:.1}"),
        ]);
    }
    println!("{}", table.render());
}

/// Ablation 1: direct LP vs cut generation.
fn solver_ablation(args: &ExperimentArgs) {
    println!("\nAblation 1 — MTP optimal solver: direct LP (2) vs cut generation");
    let mut table = AsciiTable::new(vec![
        "nodes",
        "density",
        "TP direct",
        "TP cut-gen",
        "rel. gap",
        "direct ms",
        "cut-gen ms",
    ]);
    let sizes: &[usize] = if args.quick {
        &[8, 10]
    } else {
        &[8, 10, 12, 16]
    };
    for &nodes in sizes {
        let mut rng = StdRng::seed_from_u64(args.seed + nodes as u64);
        let platform = random_platform(&RandomPlatformConfig::paper(nodes, 0.15), &mut rng);
        let (direct, direct_t) = bcast_obs::timed("ablation.direct_lp", || {
            optimal_throughput(&platform, NodeId(0), SLICE, OptimalMethod::DirectLp).unwrap()
        });
        let direct_ms = direct_t.as_secs_f64() * 1000.0;
        let (cut, cut_t) = bcast_obs::timed("ablation.cutgen", || {
            optimal_throughput(&platform, NodeId(0), SLICE, OptimalMethod::CutGeneration).unwrap()
        });
        let cut_ms = cut_t.as_secs_f64() * 1000.0;
        let gap = (direct.throughput - cut.throughput).abs() / direct.throughput.max(1e-12);
        table.add_row(vec![
            nodes.to_string(),
            "0.15".to_string(),
            format!("{:.3}", direct.throughput),
            format!("{:.3}", cut.throughput),
            format!("{:.2e}", gap),
            format!("{direct_ms:.1}"),
            format!("{cut_ms:.1}"),
        ]);
    }
    println!("{}", table.render());
}

/// Ablation 2: the refined pruning metric vs the simple one.
fn pruning_metric_ablation(args: &ExperimentArgs) {
    println!("Ablation 2 — pruning metric: max edge weight vs weighted out-degree");
    let mut table = AsciiTable::new(vec![
        "nodes",
        "Prune Simple",
        "Prune Degree",
        "degree/simple",
    ]);
    for &nodes in &[10usize, 20, 30] {
        let mut simple_rel = Vec::new();
        let mut degree_rel = Vec::new();
        for instance in 0..args.configs {
            let mut rng = StdRng::seed_from_u64(args.seed + (nodes * 1000 + instance) as u64);
            let platform = random_platform(&RandomPlatformConfig::paper(nodes, 0.12), &mut rng);
            let optimal =
                optimal_throughput(&platform, NodeId(0), SLICE, OptimalMethod::CutGeneration)
                    .unwrap();
            for (kind, bucket) in [
                (HeuristicKind::PruneSimple, &mut simple_rel),
                (HeuristicKind::PruneDegree, &mut degree_rel),
            ] {
                let tree =
                    build_structure(&platform, NodeId(0), kind, CommModel::OnePort, SLICE).unwrap();
                let tp = steady_state_throughput(&platform, &tree, CommModel::OnePort, SLICE);
                bucket.push(tp / optimal.throughput);
            }
        }
        let (simple_mean, _) = mean_and_deviation(&simple_rel);
        let (degree_mean, _) = mean_and_deviation(&degree_rel);
        table.add_row(vec![
            nodes.to_string(),
            format!("{simple_mean:.3}"),
            format!("{degree_mean:.3}"),
            format!("{:.2}x", degree_mean / simple_mean.max(1e-12)),
        ]);
    }
    println!("{}", table.render());
}

/// Ablation 3: sensitivity of the multi-port results to the overlap factor.
fn overlap_sensitivity(args: &ExperimentArgs) {
    println!("Ablation 3 — multi-port overlap factor sensitivity (Grow Tree, 20 nodes)");
    let mut table = AsciiTable::new(vec!["overlap", "mean relative perf", "deviation"]);
    for &overlap in &[0.5f64, 0.65, 0.8, 0.95] {
        let mut rel = Vec::new();
        for instance in 0..args.configs {
            let mut rng = StdRng::seed_from_u64(args.seed + instance as u64);
            let platform = random_platform(&RandomPlatformConfig::paper(20, 0.12), &mut rng)
                .with_multiport_overheads(overlap, SLICE);
            let optimal =
                optimal_throughput(&platform, NodeId(0), SLICE, OptimalMethod::CutGeneration)
                    .unwrap();
            let tree = build_structure(
                &platform,
                NodeId(0),
                HeuristicKind::GrowTree,
                CommModel::MultiPort,
                SLICE,
            )
            .unwrap();
            let tp = steady_state_throughput(&platform, &tree, CommModel::MultiPort, SLICE);
            rel.push(tp / optimal.throughput);
        }
        let (mean, dev) = mean_and_deviation(&rel);
        table.add_row(vec![
            format!("{overlap:.2}"),
            format!("{mean:.3}"),
            format!("{dev:.3}"),
        ]);
    }
    println!("{}", table.render());
}

/// Ablation 4: batch-size resolution of the synthesized periodic schedule.
fn schedule_resolution(args: &ExperimentArgs) {
    println!("Ablation 4 — schedule batch size B vs achieved fraction of the LP bound (20 nodes)");
    let mut table = AsciiTable::new(vec![
        "B",
        "schedule/LP",
        "deviation",
        "rounds",
        "loss bound",
    ]);
    for &batch in &[8usize, 16, 32, 64] {
        let mut rel = Vec::new();
        let mut rounds = Vec::new();
        let mut bound: f64 = 0.0;
        for instance in 0..args.configs {
            let mut rng = StdRng::seed_from_u64(args.seed + 31 * instance as u64);
            let platform = random_platform(&RandomPlatformConfig::paper(20, 0.12), &mut rng);
            let optimal =
                optimal_throughput(&platform, NodeId(0), SLICE, OptimalMethod::CutGeneration)
                    .unwrap();
            let schedule = synthesize_schedule(
                &platform,
                NodeId(0),
                &optimal,
                SLICE,
                &SynthesisConfig::with_batch(batch),
            )
            .unwrap();
            rel.push(schedule.efficiency());
            rounds.push(schedule.rounds().len() as f64);
            bound = bound.max(schedule.rounding().loss_bound);
        }
        let (mean, dev) = mean_and_deviation(&rel);
        let (rounds_mean, _) = mean_and_deviation(&rounds);
        table.add_row(vec![
            batch.to_string(),
            format!("{mean:.3}"),
            format!("{dev:.3}"),
            format!("{rounds_mean:.0}"),
            format!("{bound:.3}"),
        ]);
    }
    println!("{}", table.render());
}
