//! Figure 4(b): relative performance of the heuristics as a function of the
//! platform density, one-port model, random platforms.
//!
//! For each density in {0.04 … 0.20} the sweep averages the relative
//! performance over all node counts {10 … 50} and platform instances.
//!
//! ```text
//! cargo run --release -p bcast-experiments --bin fig4b -- [--configs N] [--full] [--quick] [--csv out.csv]
//! ```

use bcast_core::heuristics::HeuristicKind;
use bcast_experiments::{
    aggregate_relative, finish_journal_or_exit, install_journal_or_exit, random_sweep,
    write_csv_or_exit, AsciiTable, ExperimentArgs, RandomSweepConfig,
};

fn main() {
    let args = ExperimentArgs::from_env(10);
    install_journal_or_exit(&args.journal, "fig4b");
    let mut config = RandomSweepConfig {
        configs_per_point: args.configs,
        seed: args.seed,
        ..RandomSweepConfig::default()
    };
    if args.quick {
        config.node_counts = vec![10, 20, 30];
        config.densities = vec![0.04, 0.12, 0.20];
    }
    eprintln!(
        "fig4b: {} node counts × {} densities × {} instances (one-port)",
        config.node_counts.len(),
        config.densities.len(),
        config.configs_per_point
    );
    let records = random_sweep(&config);
    // Group by density (scaled to an integer key to avoid float-equality pitfalls).
    let aggregated = aggregate_relative(&records, |r| (r.point.density * 1000.0).round() as i64);

    let mut header = vec!["density".to_string()];
    header.extend(HeuristicKind::ALL.iter().map(|h| h.label().to_string()));
    let mut table = AsciiTable::new(header.clone());
    let mut csv_rows = Vec::new();
    for &density in &config.densities {
        let key = (density * 1000.0).round() as i64;
        let mut row = vec![format!("{density:.2}")];
        for h in HeuristicKind::ALL {
            let value = aggregated
                .iter()
                .find(|(g, k, _, _)| *g == key && *k == h)
                .map(|(_, _, mean, _)| *mean)
                .unwrap_or(f64::NAN);
            row.push(format!("{value:.3}"));
        }
        csv_rows.push(row.clone());
        table.add_row(row);
    }

    println!("\nFigure 4(b) — relative performance vs density (one-port)");
    println!("{}", table.render());
    if let Some(path) = &args.csv {
        write_csv_or_exit(path, &header, &csv_rows);
    }
    finish_journal_or_exit();
}
