//! Minimal command-line parsing shared by the experiment binaries.
//!
//! Only the handful of flags the binaries need are supported; anything else
//! aborts with a usage message. (No external CLI crate is pulled in.)

/// Common options of every experiment binary.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentArgs {
    /// Number of platform instances per parameter point.
    pub configs: usize,
    /// Base RNG seed; instance `i` of a parameter point uses `seed + i`.
    pub seed: u64,
    /// Optional CSV output path.
    pub csv: Option<String>,
    /// Restrict the sweep to smaller platforms (quick smoke run).
    pub quick: bool,
    /// Optional bcast-obs journal output path (`--journal`). When set, the
    /// binary installs the observability sink and writes one JSONL event
    /// record per LP solve / separation round / repair, closed by the
    /// span/counter dumps; `solver_report` ingests the file. Unset (the
    /// default) leaves instrumentation at its zero-cost disabled path.
    pub journal: Option<String>,
    /// Optional override of `CutGenOptions::separation_threads`
    /// (`--separation-threads N`): how many scoped workers the solvers'
    /// separation oracle shards its per-destination max-flows across.
    /// Results are byte-identical at any value; `None` (the default) keeps
    /// the library default. CI runs the drift smoke at 4 to guard the
    /// parallel path's determinism.
    pub separation_threads: Option<usize>,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        ExperimentArgs {
            configs: 3,
            seed: 2004,
            csv: None,
            quick: false,
            journal: None,
            separation_threads: None,
        }
    }
}

impl ExperimentArgs {
    /// Parses `args` (excluding the program name). `full_configs` is the
    /// paper-scale instance count selected by `--full`.
    pub fn parse<I: IntoIterator<Item = String>>(
        args: I,
        full_configs: usize,
    ) -> Result<Self, String> {
        let mut out = ExperimentArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--configs" => {
                    let v = iter.next().ok_or("--configs needs a value")?;
                    out.configs = v.parse().map_err(|_| format!("bad --configs value: {v}"))?;
                }
                "--seed" => {
                    let v = iter.next().ok_or("--seed needs a value")?;
                    out.seed = v.parse().map_err(|_| format!("bad --seed value: {v}"))?;
                }
                "--csv" => {
                    out.csv = Some(iter.next().ok_or("--csv needs a path")?);
                }
                "--journal" => {
                    out.journal = Some(iter.next().ok_or("--journal needs a path")?);
                }
                "--separation-threads" => {
                    let v = iter.next().ok_or("--separation-threads needs a value")?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("bad --separation-threads value: {v}"))?;
                    if n == 0 {
                        return Err("--separation-threads must be at least 1".to_string());
                    }
                    out.separation_threads = Some(n);
                }
                "--full" => out.configs = full_configs,
                "--quick" => out.quick = true,
                "--help" | "-h" => {
                    return Err(
                        "usage: [--configs N] [--full] [--quick] [--seed S] [--csv PATH] \
                         [--journal PATH] [--separation-threads N]"
                            .to_string(),
                    )
                }
                other => return Err(format!("unknown argument: {other}")),
            }
        }
        if out.configs == 0 {
            return Err("--configs must be at least 1".to_string());
        }
        Ok(out)
    }

    /// Parses the current process arguments, exiting with a message on error.
    pub fn from_env(full_configs: usize) -> Self {
        match Self::parse(std::env::args().skip(1), full_configs) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<ExperimentArgs, String> {
        ExperimentArgs::parse(words.iter().map(|s| s.to_string()), 10)
    }

    #[test]
    fn defaults_when_empty() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, ExperimentArgs::default());
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&[
            "--configs",
            "7",
            "--seed",
            "99",
            "--csv",
            "out.csv",
            "--journal",
            "run.jsonl",
            "--separation-threads",
            "4",
            "--quick",
        ])
        .unwrap();
        assert_eq!(a.configs, 7);
        assert_eq!(a.seed, 99);
        assert_eq!(a.csv.as_deref(), Some("out.csv"));
        assert_eq!(a.journal.as_deref(), Some("run.jsonl"));
        assert_eq!(a.separation_threads, Some(4));
        assert!(a.quick);
    }

    #[test]
    fn full_selects_paper_scale() {
        let a = parse(&["--full"]).unwrap();
        assert_eq!(a.configs, 10);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--configs"]).is_err());
        assert!(parse(&["--configs", "zero"]).is_err());
        assert!(parse(&["--configs", "0"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--journal"]).is_err());
        assert!(parse(&["--separation-threads"]).is_err());
        assert!(parse(&["--separation-threads", "0"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
