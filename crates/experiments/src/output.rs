//! Aligned ASCII tables and CSV output for the experiment binaries.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// A simple column-aligned ASCII table (header + rows of strings).
#[derive(Clone, Debug, Default)]
pub struct AsciiTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        AsciiTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; it must have as many cells as the header.
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width does not match the header"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = width[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = width[i] - cell.chars().count();
                if i == 0 {
                    // Left-align the first column (labels).
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Writes `rows` as CSV with the given `header` to `path`.
///
/// Cells are written verbatim (the harness only emits numbers and simple
/// labels, so no quoting is needed).
pub fn write_csv<P: AsRef<Path>>(
    path: P,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "{}", header.join(","))?;
    for row in rows {
        writeln!(w, "{}", row.join(","))?;
    }
    w.flush()
}

/// Writes `rows` as CSV like [`write_csv`], then prints a confirmation;
/// on failure it prints the error and exits with status 1.
///
/// This is the `--csv` handling shared by every experiment binary.
pub fn write_csv_or_exit(path: &str, header: &[String], rows: &[Vec<String>]) {
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    if let Err(error) = write_csv(path, &header_refs, rows) {
        eprintln!("cannot write {path}: {error}");
        std::process::exit(1);
    }
    eprintln!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = AsciiTable::new(vec!["name", "value"]);
        t.add_row(vec!["alpha", "1.00"]);
        t.add_row(vec!["a-much-longer-name", "12.34"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].ends_with("1.00"));
        assert!(lines[3].ends_with("12.34"));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = AsciiTable::new(vec!["a", "b"]);
        t.add_row(vec!["only-one"]);
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("bcast_experiments_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        write_csv(
            &path,
            &["x", "y"],
            &[
                vec!["1".to_string(), "2.5".to_string()],
                vec!["2".to_string(), "3.5".to_string()],
            ],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2.5\n2,3.5\n");
        std::fs::remove_file(&path).unwrap();
    }
}
