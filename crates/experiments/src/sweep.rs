//! Parameter sweeps over randomly generated and Tiers-like platforms.
//!
//! A sweep enumerates parameter points, generates `configs_per_point`
//! platforms per point deterministically from the seed, runs
//! [`bcast_core::evaluation::evaluate_heuristics_with_optimal`] on each and
//! collects one [`SweepRecord`] per heuristic. The instances of one point
//! are split into fixed-length *chains*; within a chain the instances run
//! sequentially so the binding cuts of each cut-generation solve can seed
//! the master LP of the next instance (same node count → the
//! node-partition cuts transfer). Chains are the unit distributed over
//! `std::thread::scope` workers, which keeps the sweep embarrassingly
//! parallel (a point with 100 instances yields 25 independent chains)
//! while staying fully deterministic: a chain's results depend only on the
//! instance order inside it, never on thread interleaving.

use bcast_core::evaluation::{evaluate_heuristics_with_optimal, mean_and_deviation};
use bcast_core::heuristics::HeuristicKind;
use bcast_core::optimal::cut_gen;
use bcast_core::{CutGenOptions, NodeCutSet};
use bcast_net::NodeId;
use bcast_platform::generators::random::{random_platform, RandomPlatformConfig};
use bcast_platform::generators::tiers::{tiers_platform, TiersConfig};
use bcast_platform::{CommModel, Platform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One parameter point of a sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// Number of processors of the generated platforms.
    pub nodes: usize,
    /// Requested edge density.
    pub density: f64,
}

/// Result of one heuristic on one platform instance.
#[derive(Clone, Debug)]
pub struct SweepRecord {
    /// The parameter point the instance was generated from.
    pub point: SweepPoint,
    /// Instance index within the point (0-based).
    pub instance: usize,
    /// Heuristic evaluated.
    pub heuristic: HeuristicKind,
    /// Steady-state throughput of the heuristic's structure.
    pub throughput: f64,
    /// Relative performance: throughput divided by the MTP optimum.
    pub relative: f64,
    /// The MTP optimal throughput of the instance (one-port model).
    pub optimal: f64,
    /// Master-LP rounds of the instance's cut-generation solve (repeated on
    /// every heuristic record of the same instance).
    pub master_rounds: usize,
    /// Total simplex pivots of the instance's cut-generation solve — the
    /// counter the warm-started dual simplex drives down; `table3` prints
    /// the sweep-wide totals from it.
    pub simplex_iterations: usize,
}

/// Configuration of a sweep over random platforms (paper Table 2).
#[derive(Clone, Debug)]
pub struct RandomSweepConfig {
    /// Node counts to sweep (paper: 10, 20, 30, 40, 50).
    pub node_counts: Vec<usize>,
    /// Densities to sweep (paper: 0.04 … 0.20).
    pub densities: Vec<f64>,
    /// Instances per `(nodes, density)` point (paper: 10).
    pub configs_per_point: usize,
    /// Port model under which the heuristics are evaluated.
    pub model: CommModel,
    /// When set, platforms are converted to multi-port with this overlap
    /// factor (`send_u = overlap · min_w T_{u,w}`, paper: 0.8).
    pub multiport_overlap: Option<f64>,
    /// Heuristics to evaluate.
    pub heuristics: Vec<HeuristicKind>,
    /// Slice size in bytes.
    pub slice_size: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads (defaults to the available parallelism).
    pub threads: usize,
}

impl Default for RandomSweepConfig {
    fn default() -> Self {
        RandomSweepConfig {
            node_counts: vec![10, 20, 30, 40, 50],
            densities: vec![0.04, 0.08, 0.12, 0.16, 0.20],
            configs_per_point: 3,
            model: CommModel::OnePort,
            multiport_overlap: None,
            heuristics: HeuristicKind::ALL.to_vec(),
            slice_size: 1.0e6,
            seed: 2004,
            threads: default_threads(),
        }
    }
}

/// Configuration of a sweep over Tiers-like platforms (paper Table 3).
#[derive(Clone, Debug)]
pub struct TiersSweepConfig {
    /// Platform sizes (paper: 30 and 65 nodes).
    pub node_counts: Vec<usize>,
    /// Instances per size (paper: 100).
    pub configs_per_point: usize,
    /// Port model under which the heuristics are evaluated.
    pub model: CommModel,
    /// Heuristics to evaluate.
    pub heuristics: Vec<HeuristicKind>,
    /// Slice size in bytes.
    pub slice_size: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for TiersSweepConfig {
    fn default() -> Self {
        TiersSweepConfig {
            node_counts: vec![30, 65],
            configs_per_point: 3,
            model: CommModel::OnePort,
            heuristics: HeuristicKind::ALL.to_vec(),
            slice_size: 1.0e6,
            seed: 2004,
            threads: default_threads(),
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Runs a sweep over random platforms and returns one record per
/// `(point, instance, heuristic)`.
pub fn random_sweep(config: &RandomSweepConfig) -> Vec<SweepRecord> {
    let mut points: Vec<SweepPoint> = Vec::new();
    for &nodes in &config.node_counts {
        for &density in &config.densities {
            points.push(SweepPoint { nodes, density });
        }
    }
    let model = config.model;
    let heuristics = config.heuristics.clone();
    let overlap = config.multiport_overlap;
    let slice = config.slice_size;
    let seed = config.seed;
    let configs = config.configs_per_point;
    run_points(&points, configs, config.threads, move |point, instance| {
        let instance_seed = seed
            .wrapping_add((point.nodes as u64) << 32)
            .wrapping_add((point.density * 1000.0) as u64)
            .wrapping_mul(1_000_003)
            .wrapping_add(instance as u64);
        let mut rng = StdRng::seed_from_u64(instance_seed);
        let cfg = RandomPlatformConfig::paper(point.nodes, point.density);
        let mut platform = random_platform(&cfg, &mut rng);
        if let Some(overlap) = overlap {
            platform = platform.with_multiport_overheads(overlap, slice);
        }
        (platform, model, slice, heuristics.clone())
    })
}

/// Runs a sweep over Tiers-like platforms.
pub fn tiers_sweep(config: &TiersSweepConfig) -> Vec<SweepRecord> {
    let points: Vec<SweepPoint> = config
        .node_counts
        .iter()
        .map(|&nodes| SweepPoint {
            nodes,
            density: if nodes <= 40 { 0.10 } else { 0.06 },
        })
        .collect();
    let model = config.model;
    let heuristics = config.heuristics.clone();
    let slice = config.slice_size;
    let seed = config.seed;
    let configs = config.configs_per_point;
    run_points(&points, configs, config.threads, move |point, instance| {
        let instance_seed = seed
            .wrapping_add((point.nodes as u64) << 24)
            .wrapping_mul(998_244_353)
            .wrapping_add(instance as u64);
        let mut rng = StdRng::seed_from_u64(instance_seed);
        let cfg = TiersConfig::paper(point.nodes, point.density);
        let platform = tiers_platform(&cfg, &mut rng);
        (platform, model, slice, heuristics.clone())
    })
}

/// Evaluates all heuristics on one platform instance, seeding the
/// cut-generation master LP with the previous instance's binding cuts and
/// returning the new binding cuts for the next instance in the chain.
fn evaluate_instance(
    platform: &Platform,
    point: SweepPoint,
    instance: usize,
    model: CommModel,
    slice: f64,
    heuristics: &[HeuristicKind],
    seed_cuts: Vec<NodeCutSet>,
) -> (Vec<SweepRecord>, Vec<NodeCutSet>) {
    let _span = bcast_obs::span!("sweep.instance");
    let options = CutGenOptions {
        seed_cuts,
        ..CutGenOptions::default()
    };
    match cut_gen::solve_with(platform, NodeId(0), slice, &options) {
        Ok(result) => {
            let rows = evaluate_heuristics_with_optimal(
                platform,
                NodeId(0),
                model,
                slice,
                heuristics,
                &result.optimal,
            );
            let records = rows
                .into_iter()
                .map(|row| SweepRecord {
                    point,
                    instance,
                    heuristic: row.heuristic,
                    throughput: row.throughput,
                    relative: row.relative,
                    optimal: result.optimal.throughput,
                    master_rounds: result.optimal.iterations,
                    simplex_iterations: result.optimal.simplex_iterations,
                })
                .collect();
            (records, result.binding_cuts)
        }
        Err(error) => {
            eprintln!("warning: skipping instance {instance} of point {point:?}: {error}");
            (Vec::new(), Vec::new())
        }
    }
}

/// Instances per cut-sharing chain: long enough for the warm start to pay
/// off, short enough that a point with many instances still fans out over
/// all workers (100 instances → 25 independent chains).
const CHAIN_LEN: usize = 4;

/// Distributes `(point, instance-chain)` jobs over `threads` workers. Each
/// chain runs its up-to-[`CHAIN_LEN`] instances sequentially (generating
/// the platform with `generate`), carrying the binding cuts from one
/// instance into the next. Results are returned sorted by
/// `(point index, instance)` so repeated runs with the same seed produce
/// identical output regardless of thread interleaving.
#[allow(clippy::type_complexity)]
fn run_points<G>(
    points: &[SweepPoint],
    configs: usize,
    threads: usize,
    generate: G,
) -> Vec<SweepRecord>
where
    G: Fn(SweepPoint, usize) -> (Platform, CommModel, f64, Vec<HeuristicKind>) + Sync,
{
    let mut jobs: Vec<(usize, usize)> = Vec::new(); // (point index, first instance)
    for point in 0..points.len() {
        for start in (0..configs).step_by(CHAIN_LEN.max(1)) {
            jobs.push((point, start));
        }
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<((usize, usize), Vec<SweepRecord>)>> = Mutex::new(Vec::new());
    let workers = threads.clamp(1, jobs.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = next.fetch_add(1, Ordering::Relaxed);
                if job >= jobs.len() {
                    break;
                }
                let (point_index, start) = jobs[job];
                let point = points[point_index];
                let mut records = Vec::new();
                let mut carried_cuts: Vec<NodeCutSet> = Vec::new();
                for instance in start..(start + CHAIN_LEN).min(configs) {
                    let (platform, model, slice, heuristics) = generate(point, instance);
                    let (mut instance_records, binding) = evaluate_instance(
                        &platform,
                        point,
                        instance,
                        model,
                        slice,
                        &heuristics,
                        carried_cuts,
                    );
                    records.append(&mut instance_records);
                    carried_cuts = binding;
                }
                results
                    .lock()
                    .expect("poisoned results")
                    .push(((point_index, start), records));
            });
        }
    });
    let mut indexed = results.into_inner().expect("poisoned results");
    indexed.sort_by_key(|(key, _)| *key);
    indexed.into_iter().flat_map(|(_, r)| r).collect()
}

/// Sweep-wide totals of the cut-generation solver counters:
/// `(instances, master rounds, simplex pivots)`. Every `(point, instance)`
/// pair is counted once — the per-heuristic records of one instance all
/// carry the same solve statistics.
pub fn solver_totals(records: &[SweepRecord]) -> (usize, usize, usize) {
    let mut seen: Vec<(usize, u64, usize)> = Vec::new();
    let (mut instances, mut rounds, mut pivots) = (0usize, 0usize, 0usize);
    for r in records {
        let key = (r.point.nodes, r.point.density.to_bits(), r.instance);
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        instances += 1;
        rounds += r.master_rounds;
        pivots += r.simplex_iterations;
    }
    (instances, rounds, pivots)
}

/// Prints (on stderr, like all progress chatter) the solver-totals stats
/// line shared by the table binaries. `binary` is the program-name prefix;
/// the wording is part of the binaries' observable output and must not
/// drift between them.
pub fn print_solver_stats(binary: &str, instances: usize, rounds: usize, pivots: usize) {
    eprintln!(
        "{binary}: cut generation solved {instances} instances in {rounds} master rounds, \
         {pivots} simplex pivots total (warm-started dual simplex)"
    );
}

/// Aggregates records: for every `(group, heuristic)` pair, the mean and
/// standard deviation of the relative performance. `group_of` maps a record
/// to its group key (e.g. the node count or the density bucket).
pub fn aggregate_relative<K, F>(
    records: &[SweepRecord],
    group_of: F,
) -> Vec<(K, HeuristicKind, f64, f64)>
where
    K: PartialEq + Copy,
    F: Fn(&SweepRecord) -> K,
{
    let mut groups: Vec<K> = Vec::new();
    for r in records {
        let k = group_of(r);
        if !groups.contains(&k) {
            groups.push(k);
        }
    }
    let mut heuristics: Vec<HeuristicKind> = Vec::new();
    for r in records {
        if !heuristics.contains(&r.heuristic) {
            heuristics.push(r.heuristic);
        }
    }
    let mut out = Vec::new();
    for &group in &groups {
        for &h in &heuristics {
            let samples: Vec<f64> = records
                .iter()
                .filter(|r| group_of(r) == group && r.heuristic == h)
                .map(|r| r.relative)
                .collect();
            if samples.is_empty() {
                continue;
            }
            let (mean, dev) = mean_and_deviation(&samples);
            out.push((group, h, mean, dev));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep_config() -> RandomSweepConfig {
        RandomSweepConfig {
            node_counts: vec![8],
            densities: vec![0.2],
            configs_per_point: 2,
            heuristics: vec![HeuristicKind::GrowTree, HeuristicKind::Binomial],
            threads: 2,
            ..RandomSweepConfig::default()
        }
    }

    #[test]
    fn random_sweep_produces_one_record_per_job_and_heuristic() {
        let records = random_sweep(&tiny_sweep_config());
        // 1 point × 2 instances × 2 heuristics
        assert_eq!(records.len(), 4);
        for r in &records {
            assert!(r.relative > 0.0 && r.relative <= 1.0 + 1e-6);
            assert!(r.optimal > 0.0);
            assert_eq!(r.point.nodes, 8);
            assert!(r.master_rounds > 0, "solver stats not threaded through");
            assert!(r.simplex_iterations > 0);
        }
        let (instances, rounds, pivots) = solver_totals(&records);
        assert_eq!(instances, 2, "per-heuristic duplicates not deduplicated");
        assert_eq!(rounds, records[0].master_rounds + records[2].master_rounds);
        assert!(pivots > 0);
    }

    #[test]
    fn sweeps_are_deterministic() {
        let a = random_sweep(&tiny_sweep_config());
        let b = random_sweep(&tiny_sweep_config());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.heuristic, y.heuristic);
            assert_eq!(x.instance, y.instance);
            assert!((x.relative - y.relative).abs() < 1e-12);
        }
    }

    #[test]
    fn aggregation_groups_and_averages() {
        let records = random_sweep(&tiny_sweep_config());
        let agg = aggregate_relative(&records, |r| r.point.nodes);
        // One group (8 nodes) × two heuristics.
        assert_eq!(agg.len(), 2);
        for (nodes, _h, mean, dev) in agg {
            assert_eq!(nodes, 8);
            assert!(mean > 0.0 && mean <= 1.0 + 1e-6);
            assert!(dev >= 0.0);
        }
    }

    #[test]
    fn cut_sharing_preserves_the_optimal_values() {
        // The chained (cut-seeded) solves must reach the same optimum as a
        // fresh unseeded solve of each instance: seeding only warm-starts
        // the master LP, it cannot change the LP's optimal value.
        use bcast_core::{optimal_throughput, OptimalMethod};
        let cfg = RandomSweepConfig {
            node_counts: vec![10],
            densities: vec![0.15],
            configs_per_point: 3,
            heuristics: vec![HeuristicKind::GrowTree],
            threads: 1,
            ..RandomSweepConfig::default()
        };
        let records = random_sweep(&cfg);
        assert_eq!(records.len(), 3);
        for r in &records {
            let instance_seed = cfg
                .seed
                .wrapping_add((r.point.nodes as u64) << 32)
                .wrapping_add((r.point.density * 1000.0) as u64)
                .wrapping_mul(1_000_003)
                .wrapping_add(r.instance as u64);
            let mut rng = StdRng::seed_from_u64(instance_seed);
            let platform = random_platform(
                &RandomPlatformConfig::paper(r.point.nodes, r.point.density),
                &mut rng,
            );
            let fresh = optimal_throughput(
                &platform,
                NodeId(0),
                cfg.slice_size,
                OptimalMethod::CutGeneration,
            )
            .unwrap();
            assert!(
                (r.optimal - fresh.throughput).abs() <= 1e-6 * fresh.throughput,
                "instance {}: chained {} vs fresh {}",
                r.instance,
                r.optimal,
                fresh.throughput
            );
        }
    }

    #[test]
    fn tiers_sweep_runs_on_small_counts() {
        let cfg = TiersSweepConfig {
            node_counts: vec![12],
            configs_per_point: 1,
            heuristics: vec![HeuristicKind::GrowTree],
            threads: 1,
            ..TiersSweepConfig::default()
        };
        let records = tiers_sweep(&cfg);
        assert_eq!(records.len(), 1);
        assert!(records[0].relative > 0.0);
    }
}
