//! Journal plumbing shared by the experiment binaries.
//!
//! Each binary accepts `--journal PATH` (see [`crate::ExperimentArgs`]);
//! these helpers turn that option into an installed `bcast-obs` sink at
//! startup and a flushed, closed file at exit. I/O failures abort the run
//! with a message, so a truncated journal is never mistaken for a complete
//! one (`solver_report --check` would reject it anyway — the `run_end`
//! record only lands in the flush).

use std::path::Path;

/// Installs the bcast-obs journal at `path` (when one was requested),
/// tagging the `meta` record with the producing binary's name. Exits with
/// status 2 when the file cannot be created. A `None` path leaves the
/// instrumentation at its zero-cost disabled state.
pub fn install_journal_or_exit(path: &Option<String>, binary: &str) {
    if let Some(path) = path {
        if let Err(error) = bcast_obs::install_journal(Path::new(path), binary) {
            eprintln!("cannot create journal {path}: {error}");
            std::process::exit(2);
        }
    }
}

/// Appends the span/counter dumps and the `run_end` record, then flushes
/// and closes the installed journal, if any. Exits with status 2 when the
/// dump cannot be written.
pub fn finish_journal_or_exit() {
    if let Err(error) = bcast_obs::flush_journal() {
        eprintln!("cannot finish journal: {error}");
        std::process::exit(2);
    }
}
