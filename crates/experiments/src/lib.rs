//! # bcast-experiments — reproduction harness for the paper's evaluation
//!
//! One binary per table/figure of the evaluation section (Section 5):
//!
//! | binary | reproduces | what it sweeps |
//! |--------|------------|----------------|
//! | `fig4a` | Figure 4(a) | relative performance vs number of nodes, one-port, random platforms |
//! | `fig4b` | Figure 4(b) | relative performance vs density, one-port, random platforms |
//! | `fig5`  | Figure 5    | relative performance vs number of nodes, multi-port, random platforms |
//! | `table3`| Table 3     | relative performance on Tiers-like platforms (30 and 65 nodes), mean ± deviation |
//! | `table_sched` | extension | single-tree heuristics vs the synthesized periodic schedule (Random / Tiers / Gaussian families) |
//! | `drift` | extension (ablation 6) | dynamic platforms: per-step warm-vs-cold pivots, cut reuse, and schedule repair along link-cost drift traces |
//! | `ablation` | design-choice ablations | direct LP vs cut generation; multi-port overlap sensitivity; pruning metric; schedule batch size; master-LP warm start |
//!
//! All binaries accept `--configs N` (instances per parameter point,
//! default 3), `--full` (the paper's 10 instances per point, 100 for
//! Table 3), `--seed S`, `--csv PATH` and `--journal PATH` (a `bcast-obs`
//! JSONL event journal, readable by `solver_report`). Results are printed
//! as aligned ASCII tables mirroring the paper's presentation and
//! optionally written as CSV for plotting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod journal;
pub mod output;
pub mod sweep;

pub use cli::ExperimentArgs;
pub use journal::{finish_journal_or_exit, install_journal_or_exit};
pub use output::{write_csv, write_csv_or_exit, AsciiTable};
pub use sweep::{
    aggregate_relative, print_solver_stats, random_sweep, solver_totals, tiers_sweep,
    RandomSweepConfig, SweepPoint, SweepRecord, TiersSweepConfig,
};
