//! # bcast-sim — discrete-event simulation of pipelined broadcasts
//!
//! The throughput formulas used by the heuristics (`bcast-core::throughput`)
//! are closed-form steady-state expressions. This crate provides an
//! independent, event-driven simulation of the actual slice-by-slice
//! broadcast so that those formulas can be validated and so that transient
//! behaviour (pipeline fill, makespan of finite messages) can be studied:
//!
//! * every node forwards each slice to its children in a fixed order
//!   (store-and-forward, head-of-line);
//! * under the **one-port** model a node's sends serialise on its send port
//!   and its receives on its receive port (the two directions overlap);
//! * under the **multi-port** model only the per-message sender overhead
//!   serialises, while link occupations overlap.
//!
//! The main entry points are [`simulate_broadcast`], which returns a
//! [`SimulationReport`] with per-slice completion times, the makespan, and
//! an estimated steady-state period/throughput obtained from the completion
//! times of the last slices (after the pipeline has filled), and
//! [`simulate_schedule`], the schedule-driven execution mode that replays a
//! synthesized [`bcast_sched::PeriodicSchedule`] (multi-tree periodic
//! broadcast) with full feasibility checking, so the schedule's simulated
//! throughput can be compared against the LP bound and the tree heuristics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod report;
pub mod schedule_exec;

pub use engine::{simulate_broadcast, SimulationConfig};
pub use report::SimulationReport;
pub use schedule_exec::simulate_schedule;
