//! Event-driven simulation engine.
//!
//! The engine tracks, per processor, a send port and a receive port, and per
//! structure edge a FIFO of pending slice transfers. A transfer
//! `(u → v, slice k)` may start once
//!
//! 1. `u` holds slice `k`,
//! 2. all earlier transfers of `u` (head-of-line order: slices in order,
//!    children in edge order) have *started*,
//! 3. `u`'s send port is free (one-port: busy for the whole link occupation;
//!    multi-port: busy only for the sender overhead),
//! 4. `v`'s receive port is free (busy for the whole link occupation in both
//!    models).
//!
//! Progress is driven by a time-ordered event queue; whenever a port frees
//! or a slice arrives the affected senders re-examine their head transfer.

use crate::report::SimulationReport;
use bcast_core::BroadcastStructure;
use bcast_net::{EdgeId, NodeId};
use bcast_platform::{CommModel, MessageSpec, Platform};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Configuration of one simulation run.
#[derive(Clone, Copy, Debug)]
pub struct SimulationConfig {
    /// Port model under which ports are occupied.
    pub model: CommModel,
    /// Safety cap on processed events (guards against bugs in the structure;
    /// the default is plenty for every realistic run).
    pub max_events: usize,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            model: CommModel::OnePort,
            max_events: 50_000_000,
        }
    }
}

impl SimulationConfig {
    /// Convenience constructor for a given port model.
    pub fn new(model: CommModel) -> Self {
        SimulationConfig {
            model,
            ..SimulationConfig::default()
        }
    }
}

/// A queued simulation event.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EventKind {
    /// The send port of a node becomes free.
    SenderFree(NodeId),
    /// The receive port of a node becomes free.
    ReceiverFree(NodeId),
    /// A slice arrives (becomes forwardable) at a node.
    SliceArrived(NodeId, usize),
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by time (then sequence number for determinism).
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-sender outgoing transfer schedule: slices in order, children in edge
/// order within a slice (the natural store-and-forward FIFO).
struct SenderState {
    /// Outgoing structure edges of this node, in ascending edge order.
    out_edges: Vec<EdgeId>,
    /// Index of the next transfer to start: `next / out_edges.len()` is the
    /// slice, `next % out_edges.len()` the child edge.
    next: usize,
    /// Time at which the send port frees.
    port_free_at: f64,
}

impl SenderState {
    fn pending_transfer(&self, slices: usize) -> Option<(usize, EdgeId)> {
        if self.out_edges.is_empty() {
            return None;
        }
        let total = slices * self.out_edges.len();
        if self.next >= total {
            return None;
        }
        Some((
            self.next / self.out_edges.len(),
            self.out_edges[self.next % self.out_edges.len()],
        ))
    }
}

/// Simulates the pipelined broadcast of `spec` from `structure.source()`
/// along `structure`, and reports completion times and steady-state
/// estimates.
///
/// # Panics
/// Panics if the structure's slice transfers cannot all complete within
/// `config.max_events` events (which would indicate an internal bug — the
/// structure is validated to span the platform at construction time).
pub fn simulate_broadcast(
    platform: &Platform,
    structure: &BroadcastStructure,
    spec: &MessageSpec,
    config: &SimulationConfig,
) -> SimulationReport {
    let n = platform.node_count();
    let slices = spec.slice_count();
    let source = structure.source();
    let mask = structure.edge_mask();
    let graph = platform.graph();

    // Per-node state.
    let mut senders: Vec<SenderState> = (0..n)
        .map(|u| SenderState {
            out_edges: graph
                .out_edges(NodeId(u as u32))
                .filter(|e| mask[e.id.index()])
                .map(|e| e.id)
                .collect(),
            next: 0,
            port_free_at: 0.0,
        })
        .collect();
    let mut recv_free_at = vec![0.0f64; n];
    // has_slice[u][k]: time the slice became available, or NaN if not yet.
    let mut slice_at = vec![vec![f64::NAN; slices]; n];
    slice_at[source.index()].fill(0.0);
    let mut received_count = vec![0usize; n];
    received_count[source.index()] = slices;
    let mut node_completion = vec![f64::NAN; n];
    node_completion[source.index()] = 0.0;
    // How many nodes hold slice k.
    let mut slice_holders = vec![1usize; slices];
    let mut slice_completion = vec![f64::NAN; slices];
    if n == 1 {
        return SimulationReport {
            slices,
            slice_completion: vec![0.0; slices],
            node_completion: vec![0.0],
            makespan: 0.0,
            transfers: 0,
            events: 0,
        };
    }

    let mut queue: BinaryHeap<Event> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |queue: &mut BinaryHeap<Event>, time: f64, kind: EventKind, seq: &mut u64| {
        queue.push(Event {
            time,
            seq: *seq,
            kind,
        });
        *seq += 1;
    };

    // Kick off: the source examines its head transfer at time 0.
    push(&mut queue, 0.0, EventKind::SenderFree(source), &mut seq);

    let mut transfers = 0usize;
    let mut events = 0usize;
    let mut now;

    // Attempt to start the head transfer of `u` at time `now`; returns true
    // when a transfer was started.
    let try_start = |u: NodeId,
                     now: f64,
                     senders: &mut Vec<SenderState>,
                     recv_free_at: &mut Vec<f64>,
                     slice_at: &mut Vec<Vec<f64>>,
                     queue: &mut BinaryHeap<Event>,
                     seq: &mut u64,
                     transfers: &mut usize|
     -> bool {
        let state = &senders[u.index()];
        let Some((slice, edge)) = state.pending_transfer(slices) else {
            return false;
        };
        // 1. the slice must already be available at u
        let available = slice_at[u.index()][slice];
        if !(available.is_finite() && available <= now + 1e-15) {
            return false;
        }
        // 3. send port free
        if state.port_free_at > now + 1e-15 {
            return false;
        }
        let dst = platform.graph().dst(edge);
        // 4. receive port of the destination free
        if recv_free_at[dst.index()] > now + 1e-15 {
            return false;
        }
        // Start the transfer.
        let slice_len = spec.slice_len(slice);
        let link_time = platform.link_time(edge, slice_len);
        let sender_busy = match_sender_busy(platform, edge, slice_len, link_time, config.model);
        senders[u.index()].next += 1;
        senders[u.index()].port_free_at = now + sender_busy;
        recv_free_at[dst.index()] = now + link_time;
        *transfers += 1;
        let mut enqueue = |time: f64, kind: EventKind| {
            queue.push(Event {
                time,
                seq: *seq,
                kind,
            });
            *seq += 1;
        };
        enqueue(now + sender_busy, EventKind::SenderFree(u));
        enqueue(now + link_time, EventKind::ReceiverFree(dst));
        enqueue(now + link_time, EventKind::SliceArrived(dst, slice));
        true
    };

    while let Some(event) = queue.pop() {
        events += 1;
        assert!(
            events <= config.max_events,
            "simulation exceeded {} events — structure does not make progress",
            config.max_events
        );
        now = event.time;
        match event.kind {
            EventKind::SliceArrived(v, k) => {
                if slice_at[v.index()][k].is_nan() {
                    slice_at[v.index()][k] = now;
                    received_count[v.index()] += 1;
                    if received_count[v.index()] == slices {
                        node_completion[v.index()] = now;
                    }
                    slice_holders[k] += 1;
                    if slice_holders[k] == n {
                        slice_completion[k] = now;
                    }
                }
                // The arrival may unblock v's own forwarding.
                while try_start(
                    v,
                    now,
                    &mut senders,
                    &mut recv_free_at,
                    &mut slice_at,
                    &mut queue,
                    &mut seq,
                    &mut transfers,
                ) {}
            }
            EventKind::SenderFree(u) => {
                while try_start(
                    u,
                    now,
                    &mut senders,
                    &mut recv_free_at,
                    &mut slice_at,
                    &mut queue,
                    &mut seq,
                    &mut transfers,
                ) {}
            }
            EventKind::ReceiverFree(v) => {
                // The freed receiver may unblock any of its in-neighbours.
                let parents: Vec<NodeId> = graph
                    .in_edges(v)
                    .filter(|e| mask[e.id.index()])
                    .map(|e| e.src)
                    .collect();
                for u in parents {
                    while try_start(
                        u,
                        now,
                        &mut senders,
                        &mut recv_free_at,
                        &mut slice_at,
                        &mut queue,
                        &mut seq,
                        &mut transfers,
                    ) {}
                }
            }
        }
    }

    // Every slice must have reached every node: the structure spans the
    // platform by construction.
    debug_assert!(slice_completion.iter().all(|t| t.is_finite()));
    let makespan =
        node_completion.iter().copied().fold(
            0.0f64,
            |acc, t| if t.is_finite() { acc.max(t) } else { acc },
        );
    SimulationReport {
        slices,
        slice_completion,
        node_completion,
        makespan,
        transfers,
        events,
    }
}

/// Duration for which the sender's port stays busy for one transfer.
fn match_sender_busy(
    platform: &Platform,
    edge: EdgeId,
    slice_len: f64,
    link_time: f64,
    model: CommModel,
) -> f64 {
    match model {
        CommModel::OnePort | CommModel::OnePortUnidirectional => link_time,
        CommModel::MultiPort => platform.send_time(edge, slice_len).min(link_time),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcast_core::{sta_makespan, steady_state_period};
    use bcast_net::EdgeId;
    use bcast_platform::LinkCost;

    fn chain() -> (Platform, BroadcastStructure) {
        let mut b = Platform::builder();
        let p = b.add_processors(3);
        b.add_bidirectional_link(p[0], p[1], LinkCost::one_port(0.0, 1.0)); // e0,e1
        b.add_bidirectional_link(p[1], p[2], LinkCost::one_port(0.0, 2.0)); // e2,e3
        let platform = b.build();
        let tree =
            BroadcastStructure::new(&platform, NodeId(0), vec![EdgeId(0), EdgeId(2)]).unwrap();
        (platform, tree)
    }

    fn star() -> (Platform, BroadcastStructure) {
        let mut b = Platform::builder();
        let p = b.add_processors(4);
        b.add_bidirectional_link(p[0], p[1], LinkCost::one_port(0.0, 1.0));
        b.add_bidirectional_link(p[0], p[2], LinkCost::one_port(0.0, 2.0));
        b.add_bidirectional_link(p[0], p[3], LinkCost::one_port(0.0, 3.0));
        let platform = b.build();
        let tree =
            BroadcastStructure::new(&platform, NodeId(0), vec![EdgeId(0), EdgeId(2), EdgeId(4)])
                .unwrap();
        (platform, tree)
    }

    #[test]
    fn single_slice_matches_sta_makespan() {
        for (platform, tree) in [chain(), star()] {
            let spec = MessageSpec::atomic(1.0);
            let report = simulate_broadcast(
                &platform,
                &tree,
                &spec,
                &SimulationConfig::new(CommModel::OnePort),
            );
            let expected = sta_makespan(&platform, &tree, 1.0).unwrap();
            assert!(
                (report.makespan - expected).abs() < 1e-9,
                "makespan {} vs analytic {}",
                report.makespan,
                expected
            );
        }
    }

    #[test]
    fn steady_state_period_matches_analytic_formula_chain() {
        let (platform, tree) = chain();
        let spec = MessageSpec::new(200.0, 1.0);
        let report = simulate_broadcast(
            &platform,
            &tree,
            &spec,
            &SimulationConfig::new(CommModel::OnePort),
        );
        let analytic = steady_state_period(&platform, &tree, CommModel::OnePort, 1.0);
        assert!(
            (report.estimated_period() - analytic).abs() < 1e-6,
            "simulated {} vs analytic {}",
            report.estimated_period(),
            analytic
        );
    }

    #[test]
    fn steady_state_period_matches_analytic_formula_star() {
        let (platform, tree) = star();
        let spec = MessageSpec::new(200.0, 1.0);
        let report = simulate_broadcast(
            &platform,
            &tree,
            &spec,
            &SimulationConfig::new(CommModel::OnePort),
        );
        let analytic = steady_state_period(&platform, &tree, CommModel::OnePort, 1.0);
        assert!(
            (report.estimated_period() - analytic).abs() < 1e-6,
            "simulated {} vs analytic {}",
            report.estimated_period(),
            analytic
        );
    }

    #[test]
    fn multiport_simulation_is_faster_than_one_port_on_a_star() {
        let (platform, tree) = star();
        let platform = platform.with_multiport_overheads(0.5, 1.0);
        let spec = MessageSpec::new(100.0, 1.0);
        let one = simulate_broadcast(
            &platform,
            &tree,
            &spec,
            &SimulationConfig::new(CommModel::OnePort),
        );
        let multi = simulate_broadcast(
            &platform,
            &tree,
            &spec,
            &SimulationConfig::new(CommModel::MultiPort),
        );
        assert!(multi.makespan < one.makespan);
        assert!(multi.estimated_period() <= one.estimated_period() + 1e-12);
    }

    #[test]
    fn makespan_grows_linearly_with_slices() {
        let (platform, tree) = chain();
        let cfg = SimulationConfig::new(CommModel::OnePort);
        let m10 = simulate_broadcast(&platform, &tree, &MessageSpec::new(10.0, 1.0), &cfg).makespan;
        let m20 = simulate_broadcast(&platform, &tree, &MessageSpec::new(20.0, 1.0), &cfg).makespan;
        let m30 = simulate_broadcast(&platform, &tree, &MessageSpec::new(30.0, 1.0), &cfg).makespan;
        let d1 = m20 - m10;
        let d2 = m30 - m20;
        assert!((d1 - d2).abs() < 1e-9, "non-linear growth: {d1} vs {d2}");
    }

    #[test]
    fn single_node_platform() {
        let mut b = Platform::builder();
        b.add_processor("only");
        let platform = b.build();
        let tree = BroadcastStructure::new(&platform, NodeId(0), vec![]).unwrap();
        let report = simulate_broadcast(
            &platform,
            &tree,
            &MessageSpec::new(10.0, 1.0),
            &SimulationConfig::default(),
        );
        assert_eq!(report.makespan, 0.0);
        assert_eq!(report.transfers, 0);
    }

    #[test]
    fn all_nodes_receive_all_slices() {
        let (platform, tree) = star();
        let spec = MessageSpec::new(50.0, 1.0);
        let report = simulate_broadcast(
            &platform,
            &tree,
            &spec,
            &SimulationConfig::new(CommModel::OnePort),
        );
        assert_eq!(report.slices, 50);
        assert!(report.slice_completion.iter().all(|t| t.is_finite()));
        assert!(report.node_completion.iter().all(|t| t.is_finite()));
        assert_eq!(report.transfers, 50 * 3);
        // Completion times are non-decreasing in the slice index.
        for w in report.slice_completion.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }
}
