//! Schedule-driven execution: replays a [`PeriodicSchedule`] slice by slice.
//!
//! [`crate::engine`] simulates a *broadcast structure* (the tree heuristics'
//! output) by emergent event order. A [`PeriodicSchedule`] is the opposite
//! kind of object — an explicit timetable — so its execution mode is a
//! *checked replay*: the schedule is first re-validated against the platform
//! (port matchings, interval disjointness, causality lags, spanning trees;
//! see [`PeriodicSchedule::validate`]), then unrolled period by period:
//!
//! * in period `p`, the transfer `t` carries slice `(p − t.lag)·B + t.slice`
//!   and completes at `p·P + t.finish`;
//! * batch slice `j` reaches node `v` through the single edge of tree `j`
//!   entering `v`, so every node receives every slice exactly once.
//!
//! The resulting [`SimulationReport`] is directly comparable with the one
//! produced by [`crate::simulate_broadcast`] for a tree on the same
//! platform: same completion-time semantics, same steady-state estimators.

use crate::report::SimulationReport;
use bcast_platform::{MessageSpec, Platform};
use bcast_sched::PeriodicSchedule;

/// Simulates the pipelined broadcast of `spec` by executing `schedule`
/// periodically, and reports completion times and steady-state estimates.
///
/// # Panics
/// Panics when the schedule fails validation against `platform` (which
/// would indicate a bug in the synthesis pipeline) or when `spec`'s slice
/// size differs from the one the schedule was calibrated for.
pub fn simulate_schedule(
    platform: &Platform,
    schedule: &PeriodicSchedule,
    spec: &MessageSpec,
) -> SimulationReport {
    let _span = bcast_obs::span!(bcast_obs::names::SPAN_SIM_REPLAY);
    assert!(
        (spec.slice_size - schedule.slice_size()).abs() <= 1e-9 * schedule.slice_size().max(1.0),
        "message slice size {} differs from the schedule's {}",
        spec.slice_size,
        schedule.slice_size()
    );
    if let Err(error) = schedule.validate(platform) {
        panic!("schedule failed validation: {error}");
    }

    let n = platform.node_count();
    let slices = spec.slice_count();
    let source = schedule.source();
    if n <= 1 {
        return SimulationReport {
            slices,
            slice_completion: vec![0.0; slices],
            node_completion: vec![0.0; n],
            makespan: 0.0,
            transfers: 0,
            events: 0,
        };
    }

    let batch = schedule.slices_per_period();
    let period = schedule.period();
    // arrival[j][v] = (lag, finish offset) of batch slice j at node v.
    let mut arrival: Vec<Vec<(usize, f64)>> = vec![vec![(0, 0.0); n]; batch];
    for t in schedule.transfers() {
        let v = platform.graph().dst(t.edge);
        arrival[t.slice][v.index()] = (t.lag, t.finish);
    }

    let mut slice_completion = vec![0.0f64; slices];
    let mut node_completion = vec![0.0f64; n];
    let mut transfers = 0usize;
    for (k, completion) in slice_completion.iter_mut().enumerate() {
        let q = (k / batch) as f64; // batch (period of injection)
        let j = k % batch; // tree the slice follows
        let mut done: f64 = 0.0;
        for v in platform.nodes() {
            if v == source {
                continue;
            }
            let (lag, finish) = arrival[j][v.index()];
            let at = (q + lag as f64) * period + finish;
            done = done.max(at);
            node_completion[v.index()] = node_completion[v.index()].max(at);
            transfers += 1;
        }
        *completion = done;
    }
    // The source holds everything from the start.
    node_completion[source.index()] = 0.0;
    let makespan = slice_completion.iter().copied().fold(0.0f64, f64::max);
    bcast_obs::counter_add(bcast_obs::names::SIM_TRANSFERS, transfers as u64);
    SimulationReport {
        slices,
        slice_completion,
        node_completion,
        makespan,
        transfers,
        events: transfers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcast_core::{optimal_throughput, OptimalMethod};
    use bcast_net::NodeId;
    use bcast_platform::generators::random::{random_platform, RandomPlatformConfig};
    use bcast_platform::{CommModel, LinkCost};
    use bcast_sched::{synthesize_schedule, SynthesisConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SLICE: f64 = 1.0e6;

    fn schedule_for(platform: &Platform, batch: usize) -> PeriodicSchedule {
        let optimal =
            optimal_throughput(platform, NodeId(0), SLICE, OptimalMethod::CutGeneration).unwrap();
        synthesize_schedule(
            platform,
            NodeId(0),
            &optimal,
            SLICE,
            &SynthesisConfig::with_batch(batch),
        )
        .unwrap()
    }

    #[test]
    fn completions_are_exactly_periodic() {
        let mut rng = StdRng::seed_from_u64(50);
        let platform = random_platform(&RandomPlatformConfig::paper(12, 0.15), &mut rng);
        let schedule = schedule_for(&platform, 8);
        let batch = schedule.slices_per_period();
        let spec = MessageSpec::new(5.0 * batch as f64 * SLICE, SLICE);
        let report = simulate_schedule(&platform, &schedule, &spec);
        assert_eq!(report.slices, 5 * batch);
        for k in 0..report.slices - batch {
            let gap = report.slice_completion[k + batch] - report.slice_completion[k];
            assert!(
                (gap - schedule.period()).abs() <= 1e-9 * schedule.period().max(1.0),
                "slice {k}: gap {gap} vs period {}",
                schedule.period()
            );
        }
    }

    #[test]
    fn simulated_throughput_matches_the_schedule() {
        let mut rng = StdRng::seed_from_u64(51);
        let platform = random_platform(&RandomPlatformConfig::paper(14, 0.12), &mut rng);
        let schedule = schedule_for(&platform, 12);
        let spec = MessageSpec::new(20.0 * 12.0 * SLICE, SLICE);
        let report = simulate_schedule(&platform, &schedule, &spec);
        let simulated = report.batch_throughput(schedule.slices_per_period());
        assert!(
            (simulated - schedule.throughput()).abs() <= 1e-6 * schedule.throughput(),
            "simulated {simulated} vs schedule {}",
            schedule.throughput()
        );
    }

    #[test]
    fn every_node_gets_every_slice_and_makespan_is_consistent() {
        let mut rng = StdRng::seed_from_u64(52);
        let platform = random_platform(&RandomPlatformConfig::paper(10, 0.2), &mut rng);
        let schedule = schedule_for(&platform, 6);
        let spec = MessageSpec::new(18.0 * SLICE, SLICE);
        let report = simulate_schedule(&platform, &schedule, &spec);
        assert_eq!(report.transfers, 18 * (platform.node_count() - 1));
        assert!(report.slice_completion.iter().all(|t| t.is_finite()));
        let max_node = report
            .node_completion
            .iter()
            .copied()
            .fold(0.0f64, f64::max);
        assert_eq!(report.makespan, max_node);
        // The makespan is the completion of the slowest slice (slices inside
        // one batch may complete out of order, so it need not be the last).
        let max_slice = report
            .slice_completion
            .iter()
            .copied()
            .fold(0.0f64, f64::max);
        assert_eq!(report.makespan, max_slice);
    }

    #[test]
    fn single_node_platform_is_degenerate() {
        let mut b = Platform::builder();
        b.add_processor("only");
        let platform = b.build();
        let optimal =
            optimal_throughput(&platform, NodeId(0), 1.0, OptimalMethod::CutGeneration).unwrap();
        let schedule = synthesize_schedule(
            &platform,
            NodeId(0),
            &optimal,
            1.0,
            &SynthesisConfig::default(),
        )
        .unwrap();
        let report = simulate_schedule(&platform, &schedule, &MessageSpec::new(10.0, 1.0));
        assert_eq!(report.makespan, 0.0);
        assert_eq!(report.transfers, 0);
    }

    #[test]
    #[should_panic(expected = "slice size")]
    fn slice_size_mismatch_is_rejected() {
        let mut b = Platform::builder();
        let p = b.add_processors(2);
        b.add_bidirectional_link(p[0], p[1], LinkCost::one_port(0.0, 1.0));
        let platform = b.build();
        let optimal =
            optimal_throughput(&platform, NodeId(0), SLICE, OptimalMethod::CutGeneration).unwrap();
        let schedule = synthesize_schedule(
            &platform,
            NodeId(0),
            &optimal,
            SLICE,
            &SynthesisConfig::default(),
        )
        .unwrap();
        simulate_schedule(&platform, &schedule, &MessageSpec::new(10.0, 2.0));
    }

    #[test]
    fn schedule_beats_every_tree_on_the_slow_cross_triangle() {
        // Source linked to both peers by unit links, peers interconnected by
        // time-2 links. Every spanning tree has period 2 (either a chain
        // relaying over a slow cross link or the star paying 1+1 at the
        // source), so the best tree throughput is 1/2 — while the MTP
        // optimum mixes the two chains and the star to reach 3/4.
        let mut b = Platform::builder();
        let p = b.add_processors(3);
        b.add_bidirectional_link(p[0], p[1], LinkCost::one_port(0.0, 1.0));
        b.add_bidirectional_link(p[0], p[2], LinkCost::one_port(0.0, 1.0));
        b.add_bidirectional_link(p[1], p[2], LinkCost::one_port(0.0, 2.0));
        let platform = b.build();
        let optimal =
            optimal_throughput(&platform, NodeId(0), 1.0, OptimalMethod::CutGeneration).unwrap();
        assert!(
            (optimal.throughput - 0.75).abs() < 1e-6,
            "{}",
            optimal.throughput
        );
        let schedule = synthesize_schedule(
            &platform,
            NodeId(0),
            &optimal,
            1.0,
            &SynthesisConfig::with_batch(24),
        )
        .unwrap();
        let spec = MessageSpec::new(240.0, 1.0);
        let report = simulate_schedule(&platform, &schedule, &spec);
        let simulated = report.batch_throughput(schedule.slices_per_period());
        for kind in bcast_core::HeuristicKind::ALL {
            let Ok(tree) =
                bcast_core::build_structure(&platform, NodeId(0), kind, CommModel::OnePort, 1.0)
            else {
                continue;
            };
            let tree_tp =
                bcast_core::steady_state_throughput(&platform, &tree, CommModel::OnePort, 1.0);
            assert!(
                simulated > tree_tp * 1.2,
                "{kind:?}: schedule {simulated} vs tree {tree_tp}"
            );
        }
    }
}
