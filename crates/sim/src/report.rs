//! Simulation results and the steady-state estimates derived from them.

/// Outcome of one simulated pipelined broadcast.
#[derive(Clone, Debug)]
pub struct SimulationReport {
    /// Number of slices broadcast.
    pub slices: usize,
    /// `slice_completion[k]` is the time at which slice `k` has reached
    /// every processor.
    pub slice_completion: Vec<f64>,
    /// `node_completion[u]` is the time at which processor `u` holds the
    /// whole message (its last slice).
    pub node_completion: Vec<f64>,
    /// Time at which every processor holds the whole message.
    pub makespan: f64,
    /// Number of transfers simulated.
    pub transfers: usize,
    /// Number of discrete events processed.
    pub events: usize,
}

impl SimulationReport {
    /// Estimated steady-state period: the average spacing between the
    /// completion times of the last half of the slices (after the pipeline
    /// has filled). Returns 0 when fewer than two slices were simulated.
    pub fn estimated_period(&self) -> f64 {
        let n = self.slice_completion.len();
        if n < 2 {
            return 0.0;
        }
        let start = n / 2;
        if start == n - 1 {
            return self.slice_completion[n - 1] - self.slice_completion[n - 2];
        }
        (self.slice_completion[n - 1] - self.slice_completion[start]) / (n - 1 - start) as f64
    }

    /// Estimated steady-state throughput (slices per time unit): the inverse
    /// of [`SimulationReport::estimated_period`].
    pub fn estimated_throughput(&self) -> f64 {
        let p = self.estimated_period();
        if p > 0.0 {
            1.0 / p
        } else {
            f64::INFINITY
        }
    }

    /// Time needed for the first slice to reach every processor (pipeline
    /// fill time).
    pub fn fill_time(&self) -> f64 {
        self.slice_completion.first().copied().unwrap_or(0.0)
    }

    /// Per-slice steady-state period measured over batch-strided completion
    /// gaps: when the broadcast delivers `batch` slices per period (the
    /// schedule-driven execution mode), `completion[k + batch] −
    /// completion[k]` spans exactly one period, so this estimator is immune
    /// to the within-batch completion jitter that throws off
    /// [`SimulationReport::estimated_period`]. Averages over the last half
    /// of the slices; falls back to `estimated_period` when the run is too
    /// short for a single stride.
    pub fn batch_period(&self, batch: usize) -> f64 {
        let n = self.slice_completion.len();
        if batch == 0 || n <= batch {
            return self.estimated_period();
        }
        // Strides k → k + batch with k in the last half of the run.
        let start = (n / 2).min(n - batch - 1);
        let gaps = (start..n - batch)
            .map(|k| self.slice_completion[k + batch] - self.slice_completion[k])
            .sum::<f64>();
        gaps / ((n - batch - start) * batch) as f64
    }

    /// Steady-state throughput derived from [`SimulationReport::batch_period`].
    pub fn batch_throughput(&self, batch: usize) -> f64 {
        let p = self.batch_period(batch);
        if p > 0.0 {
            1.0 / p
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(completions: Vec<f64>) -> SimulationReport {
        SimulationReport {
            slices: completions.len(),
            node_completion: vec![*completions.last().unwrap_or(&0.0)],
            makespan: *completions.last().unwrap_or(&0.0),
            slice_completion: completions,
            transfers: 0,
            events: 0,
        }
    }

    #[test]
    fn period_of_evenly_spaced_completions() {
        let r = report(vec![3.0, 5.0, 7.0, 9.0, 11.0, 13.0]);
        assert!((r.estimated_period() - 2.0).abs() < 1e-12);
        assert!((r.estimated_throughput() - 0.5).abs() < 1e-12);
        assert_eq!(r.fill_time(), 3.0);
    }

    #[test]
    fn period_ignores_the_fill_transient() {
        // Irregular start, steady tail of spacing 1.
        let r = report(vec![10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0, 17.0]);
        assert!((r.estimated_period() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batch_period_ignores_within_batch_jitter() {
        // Two slices per period of length 4; completions jitter inside the
        // batch (3, 1 offsets), which fools the adjacent-gap estimator but
        // not the batch-strided one.
        let r = report(vec![3.0, 1.0, 7.0, 5.0, 11.0, 9.0, 15.0, 13.0]);
        assert!((r.batch_period(2) - 2.0).abs() < 1e-12);
        assert!((r.batch_throughput(2) - 0.5).abs() < 1e-12);
        // Degenerate strides fall back to the plain estimator.
        assert_eq!(r.batch_period(0), r.estimated_period());
        assert_eq!(r.batch_period(100), r.estimated_period());
    }

    #[test]
    fn degenerate_reports() {
        let r = report(vec![4.0]);
        assert_eq!(r.estimated_period(), 0.0);
        assert!(r.estimated_throughput().is_infinite());
        let r2 = report(vec![4.0, 6.0]);
        assert!((r2.estimated_period() - 2.0).abs() < 1e-12);
    }
}
