//! # broadcast-trees
//!
//! A Rust reproduction of *"Broadcast Trees for Heterogeneous Platforms"*
//! (Olivier Beaumont, Loris Marchal, Yves Robert — LIP RR-2004-46 /
//! IPDPS HCW 2005): heuristics for pipelined, single-tree broadcast on
//! heterogeneous platforms, together with the optimal multiple-tree
//! throughput bound used to assess them.
//!
//! This crate is a thin facade re-exporting the workspace members:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`net`] (`bcast-net`) | directed-graph substrate: traversals, connectivity, shortest paths, max-flow/min-cut, spanning-tree utilities |
//! | [`lp`] (`bcast-lp`) | dense two-phase simplex LP solver |
//! | [`platform`] (`bcast-platform`) | platform model (affine link costs, one-port / multi-port) and generators (random, Tiers-like) |
//! | [`core`] (`bcast-core`) | the paper's heuristics, the MTP optimal throughput, the evaluation harness |
//! | [`sched`] (`bcast-sched`) | periodic steady-state schedule synthesis from the LP edge loads |
//! | [`sim`] (`bcast-sim`) | discrete-event simulator of pipelined broadcasts, including schedule replay |
//!
//! ## Quickstart
//!
//! ```
//! use broadcast_trees::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // 1. Generate a random heterogeneous platform (paper Table 2 parameters).
//! let mut rng = StdRng::seed_from_u64(42);
//! let platform = random_platform(&RandomPlatformConfig::paper(20, 0.1), &mut rng);
//! let source = NodeId(0);
//! let slice = 1.0e6; // 1 MB slices
//!
//! // 2. Build a broadcast tree with the paper's best heuristic.
//! let tree = build_structure(&platform, source, HeuristicKind::GrowTree,
//!                            CommModel::OnePort, slice).unwrap();
//!
//! // 3. Compare its throughput to the optimal multi-tree bound.
//! let tp = steady_state_throughput(&platform, &tree, CommModel::OnePort, slice);
//! let optimal = optimal_throughput(&platform, source, slice,
//!                                  OptimalMethod::CutGeneration).unwrap();
//! assert!(tp <= optimal.throughput * 1.000001);
//! assert!(tp / optimal.throughput > 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bcast_core as core;
pub use bcast_lp as lp;
pub use bcast_net as net;
pub use bcast_platform as platform;
pub use bcast_sched as sched;
pub use bcast_sim as sim;

/// Everything a typical user needs, in one import.
pub mod prelude {
    pub use bcast_core::evaluation::{evaluate_heuristics, mean_and_deviation, EvaluationRow};
    pub use bcast_core::heuristics::{build_structure, build_structure_with_loads, HeuristicKind};
    pub use bcast_core::optimal::{optimal_throughput, OptimalMethod, OptimalThroughput};
    pub use bcast_core::throughput::{
        pipelined_completion_time, sta_makespan, steady_state_bandwidth, steady_state_period,
        steady_state_throughput,
    };
    pub use bcast_core::{
        BroadcastStructure, CoreError, CutGenOptions, CutGenResult, CutGenSession, NodeCutSet,
    };
    pub use bcast_net::{EdgeId, NodeId};
    pub use bcast_platform::drift::ChurnRemap;
    pub use bcast_platform::drift::{DriftConfig, DriftEvent, DriftStep, DriftTrace};
    pub use bcast_platform::generators::gaussian_field::{
        gaussian_platform, GaussianPlatformConfig,
    };
    pub use bcast_platform::generators::random::{random_platform, RandomPlatformConfig};
    pub use bcast_platform::generators::tiers::{tiers_platform, TiersConfig};
    pub use bcast_platform::{CommModel, LinkCost, MessageSpec, Platform, PlatformBuilder};
    pub use bcast_sched::{
        resynthesize_schedule, resynthesize_schedule_churn, synthesize_schedule,
        synthesize_schedule_with_tree_fallback, PeriodicSchedule, RepairReport, RoundingConfig,
        SchedError, SynthesisConfig,
    };
    pub use bcast_sim::{
        simulate_broadcast, simulate_schedule, SimulationConfig, SimulationReport,
    };
}
