//! Differential test harness for the **sparse revised-simplex** engine.
//!
//! The sparse engine (Markowitz-LU basis, Devex pricing, FTRAN/BTRAN
//! kernels) replaced the dense full tableau as the default behind
//! `bcast_lp::solve` and
//! `SimplexState`. The dense engine is kept as the differential oracle,
//! and every test here pits the two against each other on the *same*
//! problem:
//!
//! * at the **LP level** — identical objective (1e-9 relative) and
//!   identical infeasibility verdicts on cut-master-shaped LPs, across
//!   eta-file refactorization intervals from per-pivot to effectively-never
//!   (the interval is a perf knob and must never be a correctness one);
//! * at the **TP level** — the full cut-generation solver run once per
//!   engine (and once per pricing rule) on all three platform families
//!   agrees on the optimal throughput at 1e-6 relative, and the sparse
//!   loads are primal feasible for the full cut LP;
//! * on the Tiers-65 point the sparse engine must not be slower than the
//!   dense engine (the ≥ 5× headline vs the pre-PR baseline is measured by
//!   `bench_simplex` and gated by the CI perf smoke; this assert only
//!   catches a catastrophic regression without being load-sensitive).

use broadcast_trees::core::optimal::cut_gen;
use broadcast_trees::lp::{LpProblem, PricingRule, Sense, SimplexEngine, SimplexOptions, VarId};
use broadcast_trees::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const SLICE: f64 = 1.0e6;

fn assert_rel_close(a: f64, b: f64, tol: f64, what: &str) {
    assert!(
        (a - b).abs() <= tol * a.abs().max(b.abs()).max(1e-12),
        "{what}: sparse {a} vs dense {b}"
    );
}

fn engine_options(engine: SimplexEngine) -> SimplexOptions {
    SimplexOptions {
        engine,
        ..SimplexOptions::default()
    }
}

/// A deterministic LP with the master's shape: a throughput variable pushed
/// up by the objective, "port" packing rows, and fully degenerate cut rows
/// `Σ n_e − TP ≥ 0` with zero right-hand sides.
fn master_shaped_lp(vars: usize, cuts: usize, state: &mut u64) -> LpProblem {
    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 32) as f64) / (u64::from(u32::MAX) + 1) as f64
    }
    let mut lp = LpProblem::new(Sense::Maximize);
    let tp = lp.add_var("TP", 1.0);
    let n: Vec<VarId> = (0..vars)
        .map(|i| lp.add_var(format!("n{i}"), 0.0))
        .collect();
    // Port rows: random sparse packing over the n_e.
    for _ in 0..vars / 2 {
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        for &v in &n {
            if lcg(state) < 0.4 {
                terms.push((v, 0.1 + lcg(state)));
            }
        }
        if !terms.is_empty() {
            lp.add_le(&terms, 1.0);
        }
    }
    // Cut rows: Σ over a random subset − TP ≥ 0.
    for _ in 0..cuts {
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        for &v in &n {
            if lcg(state) < 0.3 {
                terms.push((v, 1.0));
            }
        }
        terms.push((tp, -1.0));
        lp.add_ge(&terms, 0.0);
    }
    lp
}

#[test]
fn sparse_matches_dense_on_master_shaped_lps_at_every_refactor_interval() {
    for seed in 1u64..=8 {
        let mut state = 0xC0FFEE ^ seed.wrapping_mul(0x9E3779B97F4A7C15);
        let lp = master_shaped_lp(
            10 + (seed as usize % 6),
            6 + (seed as usize % 5),
            &mut state,
        );
        let dense = lp
            .solve_with(&engine_options(SimplexEngine::Dense))
            .expect("dense solves the master-shaped LP");
        for interval in [1usize, 2, 3, 64, 1_000_000] {
            let sparse = lp
                .solve_with(&SimplexOptions {
                    refactor_interval: interval,
                    ..SimplexOptions::default()
                })
                .expect("sparse solves the master-shaped LP");
            assert_rel_close(
                sparse.objective,
                dense.objective,
                1e-9,
                &format!("seed {seed} interval {interval} objective"),
            );
            assert!(
                lp.max_violation(&sparse.values) < 1e-6,
                "seed {seed} interval {interval}: sparse point infeasible \
                 (violation {})",
                lp.max_violation(&sparse.values)
            );
        }
    }
}

#[test]
fn engines_agree_on_infeasible_and_unbounded_verdicts() {
    use broadcast_trees::lp::LpError;
    // Infeasible: x ≤ 1 ∧ x ≥ 2.
    let mut lp = LpProblem::new(Sense::Maximize);
    let x = lp.add_var("x", 1.0);
    lp.add_le(&[(x, 1.0)], 1.0);
    lp.add_ge(&[(x, 1.0)], 2.0);
    for engine in [SimplexEngine::Sparse, SimplexEngine::Dense] {
        assert_eq!(
            lp.solve_with(&engine_options(engine)).unwrap_err(),
            LpError::Infeasible,
            "{engine:?}"
        );
    }
    // Unbounded: max x with only x − y ≥ 0.
    let mut lp = LpProblem::new(Sense::Maximize);
    let x = lp.add_var("x", 1.0);
    let y = lp.add_var("y", 0.0);
    lp.add_ge(&[(x, 1.0), (y, -1.0)], 0.0);
    for engine in [SimplexEngine::Sparse, SimplexEngine::Dense] {
        assert_eq!(
            lp.solve_with(&engine_options(engine)).unwrap_err(),
            LpError::Unbounded,
            "{engine:?}"
        );
    }
}

/// The headline differential: the full cut-generation solver, sparse vs
/// dense engine, on one instance of each platform family. Termination is
/// certified by the separation oracle on both sides, so the TPs agree at
/// 1e-6 even though the engines walk different degenerate vertices.
#[test]
fn cut_generation_tp_matches_across_engines_on_all_families() {
    let mut platforms: Vec<(&str, Platform)> = Vec::new();
    let mut rng = StdRng::seed_from_u64(5024);
    platforms.push((
        "random-20",
        random_platform(&RandomPlatformConfig::paper(20, 0.12), &mut rng),
    ));
    let mut rng = StdRng::seed_from_u64(5025);
    platforms.push((
        "tiers-20",
        tiers_platform(&TiersConfig::paper(20, 0.10), &mut rng),
    ));
    let mut rng = StdRng::seed_from_u64(5026);
    platforms.push((
        "gaussian-20",
        gaussian_platform(&GaussianPlatformConfig::paper(20), &mut rng),
    ));
    for (label, platform) in &platforms {
        let run = |engine: SimplexEngine, pricing: PricingRule| {
            cut_gen::solve_with(
                platform,
                NodeId(0),
                SLICE,
                &CutGenOptions {
                    lp_engine: engine,
                    pricing,
                    ..CutGenOptions::default()
                },
            )
            .expect("solvable instance")
        };
        let sparse = run(SimplexEngine::Sparse, PricingRule::Devex);
        let dantzig = run(SimplexEngine::Sparse, PricingRule::Dantzig);
        let steepest = run(SimplexEngine::Sparse, PricingRule::SteepestEdge);
        let dense = run(SimplexEngine::Dense, PricingRule::Devex);
        assert_rel_close(
            sparse.optimal.throughput,
            dense.optimal.throughput,
            1e-6,
            &format!("{label} TP (devex)"),
        );
        assert_rel_close(
            dantzig.optimal.throughput,
            dense.optimal.throughput,
            1e-6,
            &format!("{label} TP (dantzig)"),
        );
        assert_rel_close(
            steepest.optimal.throughput,
            dense.optimal.throughput,
            1e-6,
            &format!("{label} TP (steepest)"),
        );
        // The sparse loads must support the claimed throughput per
        // destination (primal feasibility of the full cut LP).
        for w in platform.nodes().filter(|&w| w != NodeId(0)) {
            let flow =
                broadcast_trees::net::maxflow::max_flow(platform.graph(), NodeId(0), w, |e, _| {
                    sparse.optimal.edge_load[e.index()]
                });
            assert!(
                flow.value >= sparse.optimal.throughput * (1.0 - 1e-5),
                "{label}: destination {w} flow {} < TP {}",
                flow.value,
                sparse.optimal.throughput
            );
        }
    }
}

/// The Tiers-65 scaling point: sparse ≡ dense at the TP level, and the
/// sparse engine must not lose to the dense engine on wall-clock. The
/// pre-PR dense baseline measured 370 ms (seed 65) / 821 ms (seed 2069)
/// against 11 ms / 56 ms sparse in release — a 15–34× improvement; this
/// assert deliberately leaves a wide margin so CI load cannot flake it.
#[test]
fn tiers_65_sparse_is_not_slower_than_dense_and_tp_matches() {
    let mut rng = StdRng::seed_from_u64(65);
    let platform = tiers_platform(&TiersConfig::paper(65, 0.06), &mut rng);
    let run = |engine: SimplexEngine| {
        let t = Instant::now();
        let r = cut_gen::solve_with(
            &platform,
            NodeId(0),
            SLICE,
            &CutGenOptions {
                lp_engine: engine,
                ..CutGenOptions::default()
            },
        )
        .expect("solvable instance");
        (r, t.elapsed().as_secs_f64())
    };
    let (sparse, sparse_s) = run(SimplexEngine::Sparse);
    let (dense, dense_s) = run(SimplexEngine::Dense);
    assert_rel_close(
        sparse.optimal.throughput,
        dense.optimal.throughput,
        1e-6,
        "tiers-65 TP",
    );
    eprintln!(
        "tiers-65: sparse {:.1} ms / {} pivots vs dense {:.1} ms / {} pivots",
        sparse_s * 1e3,
        sparse.optimal.simplex_iterations,
        dense_s * 1e3,
        dense.optimal.simplex_iterations
    );
    assert!(
        sparse_s <= dense_s * 1.5,
        "sparse engine slower than dense on tiers-65: {sparse_s:.3}s vs {dense_s:.3}s"
    );
}

/// A 130-node Tiers point completes quickly under the sparse engine — the
/// scale the dense tableau could not reach (96 s in the pre-PR seed state,
/// sub-second sparse in release).
#[test]
fn tiers_130_completes_under_the_sparse_engine() {
    let mut rng = StdRng::seed_from_u64(130);
    let platform = tiers_platform(&TiersConfig::paper(130, 0.04), &mut rng);
    let r = cut_gen::solve(&platform, NodeId(0), SLICE).expect("solvable instance");
    assert!(r.throughput > 0.0 && r.throughput.is_finite());
    assert!(r.iterations < 100, "round count exploded: {}", r.iterations);
}
