//! Cross-crate determinism guard.
//!
//! Everything in this workspace — the platform generators, the LP solver,
//! the heuristics, the simulator — is required to be bit-for-bit
//! deterministic for a fixed seed: iteration orders are index orders, the
//! only randomness flows through an explicitly seeded `StdRng`, and the
//! sweeps sort their results by job index. These tests pin that property so
//! a future refactor that sneaks in hash-map iteration, thread-order
//! dependence, or an RNG stream change is caught immediately.
//!
//! The golden values below were produced by this crate itself (seed 2024,
//! 12-node / 0.15-density paper platform). If an *intentional* change to a
//! heuristic, the generator, or the vendored RNG shifts them, rerun with
//! `--nocapture`: each assertion prints the observed tree so the constants
//! can be updated in one pass. Do not update them for refactors that are
//! supposed to be behaviour-preserving.

use broadcast_trees::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SLICE: f64 = 1.0e6;
const SEED: u64 = 2024;

fn fixture() -> Platform {
    let mut rng = StdRng::seed_from_u64(SEED);
    random_platform(&RandomPlatformConfig::paper(12, 0.15), &mut rng)
}

/// `(heuristic, steady-state throughput, tree edge ids)` for the fixture.
fn golden() -> Vec<(HeuristicKind, f64, Vec<u32>)> {
    vec![
        (
            HeuristicKind::PruneSimple,
            28.630683,
            vec![0, 2, 5, 8, 11, 13, 14, 17, 21, 22, 31],
        ),
        (
            HeuristicKind::PruneDegree,
            52.243232,
            vec![1, 11, 13, 14, 17, 21, 22, 24, 26, 31, 37],
        ),
        (
            HeuristicKind::GrowTree,
            38.613852,
            vec![1, 5, 11, 13, 14, 17, 19, 21, 22, 26, 37],
        ),
        // The LP-based goldens moved when cut purging landed (PR 2): the
        // master LP reaches the same optimal *value* but a different
        // degenerate-optimal load vertex, so the LP-guided trees differ.
        (
            HeuristicKind::LpGrow,
            48.738100,
            vec![1, 3, 8, 10, 13, 16, 22, 27, 28, 33, 39],
        ),
        (
            HeuristicKind::LpPrune,
            48.738100,
            vec![1, 3, 8, 10, 13, 16, 22, 27, 28, 33, 39],
        ),
        (
            HeuristicKind::Binomial,
            28.095803,
            vec![
                1, 2, 3, 4, 5, 8, 10, 11, 13, 14, 15, 19, 20, 22, 24, 26, 27, 28, 30, 32, 36,
            ],
        ),
    ]
}

#[test]
fn every_heuristic_matches_its_golden_tree_and_throughput() {
    let platform = fixture();
    assert_eq!(platform.edge_count(), 40, "generator stream changed");
    for (kind, expected_tp, expected_edges) in golden() {
        let tree = build_structure(&platform, NodeId(0), kind, CommModel::OnePort, SLICE).unwrap();
        let observed: Vec<u32> = tree.edges().iter().map(|e| e.0).collect();
        let tp = steady_state_throughput(&platform, &tree, CommModel::OnePort, SLICE);
        assert_eq!(
            observed, expected_edges,
            "{kind:?} built a different tree (observed tp {tp:.6})"
        );
        assert!(
            (tp - expected_tp).abs() < 1e-5,
            "{kind:?} throughput drifted: observed {tp:.6}, golden {expected_tp:.6}"
        );
    }
}

#[test]
fn rebuilding_from_the_same_seed_is_identical() {
    // Two completely independent platform + tree constructions; any hidden
    // global state or allocation-order dependence breaks this.
    for kind in HeuristicKind::ALL {
        let (a_edges, a_tp) = {
            let p = fixture();
            let t = build_structure(&p, NodeId(0), kind, CommModel::OnePort, SLICE).unwrap();
            let tp = steady_state_throughput(&p, &t, CommModel::OnePort, SLICE);
            (t.edges().to_vec(), tp)
        };
        let (b_edges, b_tp) = {
            let p = fixture();
            let t = build_structure(&p, NodeId(0), kind, CommModel::OnePort, SLICE).unwrap();
            let tp = steady_state_throughput(&p, &t, CommModel::OnePort, SLICE);
            (t.edges().to_vec(), tp)
        };
        assert_eq!(a_edges, b_edges, "{kind:?} is not rebuild-deterministic");
        assert_eq!(a_tp, b_tp, "{kind:?} throughput differs across rebuilds");
    }
}

#[test]
fn optimal_solvers_are_deterministic_and_agree() {
    let platform = fixture();
    let a = optimal_throughput(&platform, NodeId(0), SLICE, OptimalMethod::CutGeneration).unwrap();
    let b = optimal_throughput(&platform, NodeId(0), SLICE, OptimalMethod::CutGeneration).unwrap();
    assert_eq!(a.throughput, b.throughput);
    assert_eq!(a.edge_load, b.edge_load);
    let direct = optimal_throughput(&platform, NodeId(0), SLICE, OptimalMethod::DirectLp).unwrap();
    assert!(
        (direct.throughput - a.throughput).abs() <= 1e-4 * a.throughput,
        "direct {} vs cut-gen {}",
        direct.throughput,
        a.throughput
    );
}

#[test]
fn schedule_synthesis_matches_its_golden_digest() {
    // Golden periodic schedule for the fixture (batch size pinned to 16 so
    // the digest does not depend on the auto-resolution heuristic). As with
    // the golden trees above: update only for intentional changes to the
    // rounding, packing, or timetable algorithms.
    let platform = fixture();
    let optimal = optimal_throughput(&platform, NodeId(0), SLICE, OptimalMethod::CutGeneration)
        .expect("fixture is solvable");
    let schedule = synthesize_schedule(
        &platform,
        NodeId(0),
        &optimal,
        SLICE,
        &SynthesisConfig::with_batch(16),
    )
    .expect("synthesis succeeds");
    schedule.validate(&platform).expect("schedule is feasible");
    let first_tree: Vec<u32> = schedule.trees()[0].iter().map(|e| e.0).collect();
    println!(
        "observed: period {:.9}, rounds {}, max_lag {}, transfers {}, tree0 {:?}",
        schedule.period(),
        schedule.rounds().len(),
        schedule.max_lag(),
        schedule.transfers().len(),
        first_tree,
    );
    assert_eq!(schedule.slices_per_period(), 16);
    assert_eq!(schedule.transfers().len(), 16 * 11);
    assert_eq!(schedule.rounds().len(), GOLDEN_SCHED_ROUNDS);
    assert_eq!(schedule.max_lag(), GOLDEN_SCHED_MAX_LAG);
    assert!(
        (schedule.period() - GOLDEN_SCHED_PERIOD).abs() <= 1e-6 * GOLDEN_SCHED_PERIOD,
        "period drifted: observed {:.9}, golden {GOLDEN_SCHED_PERIOD:.9}",
        schedule.period()
    );
    assert_eq!(first_tree, GOLDEN_SCHED_TREE0);

    // Rebuilding from scratch is bit-identical.
    let again = synthesize_schedule(
        &platform,
        NodeId(0),
        &optimal,
        SLICE,
        &SynthesisConfig::with_batch(16),
    )
    .unwrap();
    assert_eq!(schedule.period(), again.period());
    assert_eq!(schedule.trees(), again.trees());
    assert_eq!(schedule.transfers(), again.transfers());
}

/// Golden digest of the fixture's batch-16 schedule (see the test above).
/// The digest moved when the sparse revised-simplex master landed (PR 5)
/// and again when the Markowitz LU replaced the eta file (PR 9), as it
/// did for PR 3: the master reaches the same optimal value at a different
/// degenerate load vertex (the LU's free pivot-row choice permutes the
/// basis, shifting which vertex Devex walks to), so the packed trees and
/// timetable shift while the throughput itself is pinned unchanged by the
/// cut-generation goldens.
const GOLDEN_SCHED_PERIOD: f64 = 0.199824116;
const GOLDEN_SCHED_ROUNDS: usize = 20;
const GOLDEN_SCHED_MAX_LAG: usize = 5;
const GOLDEN_SCHED_TREE0: [u32; 11] = [22, 8, 27, 16, 10, 28, 1, 3, 13, 39, 33];

#[test]
fn cut_generation_stats_match_their_goldens() {
    // Golden cut-generation statistics for one fixed instance per platform
    // family: master rounds, cuts generated, cuts purged, total simplex
    // pivots, and the optimal throughput to 9 significant digits. Pinned so
    // degenerate-vertex drift (like PR 2's golden-tree churn and PR 3's
    // schedule-tree churn) is caught deliberately, not discovered in review.
    // Rerun with `--nocapture` to print the observed tuple for an
    // *intentional* solver change.
    struct Golden {
        label: &'static str,
        rounds: usize,
        cuts: usize,
        purged: usize,
        simplex_iterations: usize,
        throughput: f64,
    }
    let goldens = [
        Golden {
            label: "random-12",
            rounds: 4,
            cuts: 21,
            purged: 2,
            simplex_iterations: 57,
            throughput: 88.5196294,
        },
        Golden {
            label: "tiers-20",
            rounds: 6,
            cuts: 30,
            purged: 0,
            simplex_iterations: 36,
            throughput: 22.1543323,
        },
        Golden {
            label: "gaussian-20",
            rounds: 7,
            cuts: 33,
            purged: 5,
            simplex_iterations: 88,
            throughput: 11.8467300,
        },
    ];
    for golden in goldens {
        let platform = match golden.label {
            "random-12" => fixture(),
            "tiers-20" => {
                let mut rng = StdRng::seed_from_u64(SEED);
                tiers_platform(&TiersConfig::paper(20, 0.10), &mut rng)
            }
            "gaussian-20" => {
                let mut rng = StdRng::seed_from_u64(SEED);
                gaussian_platform(&GaussianPlatformConfig::paper(20), &mut rng)
            }
            _ => unreachable!(),
        };
        let o = optimal_throughput(&platform, NodeId(0), SLICE, OptimalMethod::CutGeneration)
            .expect("fixture is solvable");
        println!(
            "{}: rounds {}, cuts {}, purged {}, simplex_iterations {}, throughput {:.7}",
            golden.label, o.iterations, o.cuts, o.purged_cuts, o.simplex_iterations, o.throughput
        );
        assert_eq!(
            o.iterations, golden.rounds,
            "{}: master rounds drifted",
            golden.label
        );
        assert_eq!(o.cuts, golden.cuts, "{}: cut count drifted", golden.label);
        assert_eq!(
            o.purged_cuts, golden.purged,
            "{}: purge count drifted",
            golden.label
        );
        assert_eq!(
            o.simplex_iterations, golden.simplex_iterations,
            "{}: pivot count drifted",
            golden.label
        );
        assert!(
            (o.throughput - golden.throughput).abs() <= 1e-7 * golden.throughput,
            "{}: throughput drifted: observed {:.7}, golden {:.7}",
            golden.label,
            o.throughput,
            golden.throughput
        );
    }
}

#[test]
fn drift_trace_stats_match_their_goldens() {
    // Golden per-step statistics of the dynamic-platform pipeline — warm
    // cut-generation session + incremental schedule repair along a
    // link-cost drift trace — for one fixed seed per platform family:
    // throughput (to 1e-7 relative), simplex pivots, cuts reused from the
    // pool, and schedule repair operations at every step. Pinned for the
    // same reason as the cut-generation goldens above: the pipeline is
    // required to be bit-deterministic, and degenerate-vertex drift in the
    // warm re-solves should be a deliberate change, not silent churn.
    // Rerun with `--nocapture` to print the observed tuples for an
    // *intentional* solver or repair change.
    struct GoldenTrace {
        label: &'static str,
        batch: usize,
        // (throughput, simplex pivots, cuts reused, repair ops) per step.
        steps: Vec<(f64, usize, usize, usize)>,
    }
    let goldens = [
        GoldenTrace {
            label: "random-12",
            batch: 8,
            steps: vec![
                (88.5196294, 57, 0, 0),
                (82.1243517, 14, 19, 8),
                (70.8243881, 16, 20, 7),
                (84.6024662, 21, 19, 8),
            ],
        },
        GoldenTrace {
            label: "tiers-20",
            batch: 8,
            steps: vec![
                (22.1543323, 36, 0, 0),
                (22.5662494, 1, 30, 0),
                (24.4061582, 1, 30, 8),
                (22.7495636, 0, 30, 0),
            ],
        },
        GoldenTrace {
            label: "gaussian-20",
            batch: 8,
            steps: vec![
                (11.8467300, 88, 0, 0),
                (11.4742380, 2, 28, 8),
                (11.9616509, 0, 28, 0),
                (12.2607609, 1, 28, 0),
            ],
        },
    ];
    // Collect every family's observations before asserting, so a rerun
    // with `--nocapture` prints the full replacement table in one pass.
    type StepStats = (f64, usize, usize, usize);
    let mut observed: Vec<(&'static str, Vec<StepStats>)> = Vec::new();
    for golden in &goldens {
        let platform = match golden.label {
            "random-12" => fixture(),
            "tiers-20" => {
                let mut rng = StdRng::seed_from_u64(SEED);
                tiers_platform(&TiersConfig::paper(20, 0.10), &mut rng)
            }
            "gaussian-20" => {
                let mut rng = StdRng::seed_from_u64(SEED);
                gaussian_platform(&GaussianPlatformConfig::paper(20), &mut rng)
            }
            _ => unreachable!(),
        };
        let trace = DriftTrace::generate(
            &platform,
            NodeId(0),
            &DriftConfig::with_failures(golden.steps.len() - 1, SEED),
        );
        let config = SynthesisConfig::with_batch(golden.batch);
        let mut session =
            CutGenSession::new(trace.base(), NodeId(0), SLICE, CutGenOptions::default())
                .expect("base solvable");
        let mut previous: Option<PeriodicSchedule> = None;
        let mut rows = Vec::new();
        for step in 0..golden.steps.len() {
            let snapshot = trace.platform_at(step);
            let result = session.solve_step(&snapshot).expect("step solvable");
            let (schedule, report) = match &previous {
                None => (
                    synthesize_schedule(&snapshot, NodeId(0), &result.optimal, SLICE, &config)
                        .expect("synthesis succeeds"),
                    RepairReport::default(),
                ),
                Some(prev) => resynthesize_schedule(
                    &snapshot,
                    NodeId(0),
                    &result.optimal,
                    SLICE,
                    &config,
                    prev,
                )
                .expect("repair succeeds"),
            };
            schedule.validate(&snapshot).expect("schedule is feasible");
            println!(
                "{} step {step}: ({:.7}, {}, {}, {}),",
                golden.label,
                result.optimal.throughput,
                result.optimal.simplex_iterations,
                result.reused_cuts,
                report.repair_ops(),
            );
            rows.push((
                result.optimal.throughput,
                result.optimal.simplex_iterations,
                result.reused_cuts,
                report.repair_ops(),
            ));
            previous = Some(schedule);
        }
        observed.push((golden.label, rows));
    }
    for (golden, (label, rows)) in goldens.iter().zip(&observed) {
        assert_eq!(golden.label, *label);
        for (step, (&(tp, pivots, reused, repairs), &(otp, opivots, oreused, orepairs))) in
            golden.steps.iter().zip(rows).enumerate()
        {
            assert!(
                (otp - tp).abs() <= 1e-7 * tp,
                "{label} step {step}: throughput drifted: observed {otp:.7}, golden {tp:.7}"
            );
            assert_eq!(opivots, pivots, "{label} step {step}: pivot count drifted");
            assert_eq!(
                oreused, reused,
                "{label} step {step}: reused-cut count drifted"
            );
            assert_eq!(
                orepairs, repairs,
                "{label} step {step}: repair-op count drifted"
            );
        }
    }
}

#[test]
fn churn_trace_stats_match_their_goldens() {
    // Golden per-step statistics of the node-churn pipeline — warm
    // cut-generation session surviving joins/leaves via cut-pool remapping
    // and LP column add/delete, plus churn-aware schedule repair — for one
    // fixed seed per platform family: throughput (to 1e-7 relative),
    // simplex pivots, cuts reused across the remap, schedule repair ops,
    // and the grafted/pruned node counts of the repair path at every step.
    // Pinned for the same reason as the other golden tables: the pipeline
    // is required to be bit-deterministic, and degenerate-vertex drift in
    // the churn re-solves should be a deliberate change, not silent churn.
    // Rerun with `--nocapture` to print the observed tuples for an
    // *intentional* solver or repair change.
    struct GoldenChurn {
        label: &'static str,
        batch: usize,
        // (throughput, pivots, cuts reused, repair ops, grafted, pruned).
        steps: Vec<(f64, usize, usize, usize, usize, usize)>,
    }
    let goldens = [
        GoldenChurn {
            label: "random-12",
            batch: 8,
            steps: vec![
                (88.5196294, 57, 0, 0, 0, 0),
                (67.6487047, 34, 3, 8, 0, 0),
                (60.2815903, 29, 6, 8, 0, 0),
                (64.6966420, 29, 5, 0, 1, 1),
            ],
        },
        GoldenChurn {
            label: "tiers-20",
            batch: 8,
            steps: vec![
                (22.1543323, 36, 0, 0, 0, 0),
                (29.6838884, 49, 6, 8, 0, 0),
                (31.6597730, 60, 24, 0, 1, 0),
                (31.9210482, 48, 6, 0, 1, 1),
            ],
        },
        GoldenChurn {
            label: "gaussian-20",
            batch: 8,
            steps: vec![
                (11.8467300, 88, 0, 0, 0, 0),
                (13.3156753, 81, 29, 0, 1, 0),
                (13.6869499, 5, 37, 8, 0, 0),
                (46.9684640, 236, 6, 8, 0, 0),
            ],
        },
    ];
    // Collect every family's observations before asserting, so a rerun
    // with `--nocapture` prints the full replacement table in one pass.
    type ChurnStepStats = (f64, usize, usize, usize, usize, usize);
    let mut observed: Vec<(&'static str, Vec<ChurnStepStats>)> = Vec::new();
    for golden in &goldens {
        let platform = match golden.label {
            "random-12" => fixture(),
            "tiers-20" => {
                let mut rng = StdRng::seed_from_u64(SEED);
                tiers_platform(&TiersConfig::paper(20, 0.10), &mut rng)
            }
            "gaussian-20" => {
                let mut rng = StdRng::seed_from_u64(SEED);
                gaussian_platform(&GaussianPlatformConfig::paper(20), &mut rng)
            }
            _ => unreachable!(),
        };
        let trace = DriftTrace::generate(
            &platform,
            NodeId(0),
            &DriftConfig::with_churn(golden.steps.len() - 1, SEED),
        );
        let config = SynthesisConfig::with_batch(golden.batch);
        let snap0 = trace.platform_at(0);
        let mut session =
            CutGenSession::new(&snap0, trace.source_at(0), SLICE, CutGenOptions::default())
                .expect("step-0 platform solvable");
        let mut previous: Option<PeriodicSchedule> = None;
        let mut rows = Vec::new();
        for step in 0..golden.steps.len() {
            let snapshot = trace.platform_at(step);
            let source = trace.source_at(step);
            let result = if step == 0 {
                session.solve_step(&snapshot).expect("step solvable")
            } else {
                session
                    .solve_step_churn(&snapshot, &trace.remap(step - 1, step))
                    .expect("churn step solvable")
            };
            let (schedule, report) = match &previous {
                None => (
                    synthesize_schedule(&snapshot, source, &result.optimal, SLICE, &config)
                        .expect("synthesis succeeds"),
                    RepairReport::default(),
                ),
                Some(prev) => resynthesize_schedule_churn(
                    &snapshot,
                    source,
                    &result.optimal,
                    SLICE,
                    &config,
                    prev,
                    &trace.remap(step - 1, step),
                )
                .expect("churn repair succeeds"),
            };
            schedule.validate(&snapshot).expect("schedule is feasible");
            println!(
                "{} step {step}: ({:.7}, {}, {}, {}, {}, {}),",
                golden.label,
                result.optimal.throughput,
                result.optimal.simplex_iterations,
                result.reused_cuts,
                report.repair_ops(),
                report.grafted_nodes,
                report.pruned_nodes,
            );
            rows.push((
                result.optimal.throughput,
                result.optimal.simplex_iterations,
                result.reused_cuts,
                report.repair_ops(),
                report.grafted_nodes,
                report.pruned_nodes,
            ));
            previous = Some(schedule);
        }
        observed.push((golden.label, rows));
    }
    for (golden, (label, rows)) in goldens.iter().zip(&observed) {
        assert_eq!(golden.label, *label);
        for (step, (&(tp, pivots, reused, repairs, grafted, pruned), &o)) in
            golden.steps.iter().zip(rows).enumerate()
        {
            let (otp, opivots, oreused, orepairs, ografted, opruned) = o;
            assert!(
                (otp - tp).abs() <= 1e-7 * tp,
                "{label} step {step}: throughput drifted: observed {otp:.7}, golden {tp:.7}"
            );
            assert_eq!(opivots, pivots, "{label} step {step}: pivot count drifted");
            assert_eq!(
                oreused, reused,
                "{label} step {step}: reused-cut count drifted"
            );
            assert_eq!(
                orepairs, repairs,
                "{label} step {step}: repair-op count drifted"
            );
            assert_eq!(
                ografted, grafted,
                "{label} step {step}: grafted-node count drifted"
            );
            assert_eq!(
                opruned, pruned,
                "{label} step {step}: pruned-node count drifted"
            );
        }
    }
}

#[test]
fn tiers_200_sweep_point_is_pinned() {
    // The scaling acceptance of the sparse revised-simplex work (PR 5): a
    // 200-node Tiers point — far beyond what the dense tableau could touch
    // (the 130-node point alone took ~96 s in the pre-sparse seed state) —
    // solves to optimality in seconds, deterministically. Pinned like the
    // other cut-generation goldens: TP to 1e-7 relative plus the exact
    // round/cut/pivot counts; rerun with `--nocapture` to print the
    // replacement tuple after an intentional solver change.
    let mut rng = StdRng::seed_from_u64(200);
    let platform = tiers_platform(&TiersConfig::paper(200, 0.03), &mut rng);
    let o = optimal_throughput(&platform, NodeId(0), SLICE, OptimalMethod::CutGeneration)
        .expect("200-node Tiers point is solvable");
    println!(
        "tiers-200: rounds {}, cuts {}, purged {}, simplex_iterations {}, throughput {:.7}",
        o.iterations, o.cuts, o.purged_cuts, o.simplex_iterations, o.throughput
    );
    assert_eq!(o.iterations, 11, "master rounds drifted");
    assert_eq!(o.cuts, 555, "cut count drifted");
    assert_eq!(o.purged_cuts, 272, "purge count drifted");
    assert_eq!(o.simplex_iterations, 2118, "pivot count drifted");
    assert!(
        (o.throughput - 93.8493550).abs() <= 1e-7 * 93.8493550,
        "throughput drifted: observed {:.7}, golden 93.8493550",
        o.throughput
    );
}

#[test]
fn parallel_separation_is_bit_identical_to_serial() {
    // The sharded separation oracle (PR 9) must be invisible in the
    // results: for any `separation_threads`, the workers only fill
    // per-destination slots and the main thread reduces them in fixed
    // destination order, so every float of the solve — not just the
    // converged throughput — is bit-for-bit the serial value.
    use broadcast_trees::core::optimal::cut_gen;
    let mut rng = StdRng::seed_from_u64(SEED);
    let platform = tiers_platform(&TiersConfig::paper(40, 0.10), &mut rng);
    let solve = |threads: usize| {
        cut_gen::solve_with(
            &platform,
            NodeId(0),
            SLICE,
            &CutGenOptions {
                separation_threads: threads,
                ..CutGenOptions::default()
            },
        )
        .expect("tiers-40 fixture is solvable")
    };
    let serial = solve(1);
    let threaded = solve(4);
    assert_eq!(
        serial.optimal.throughput.to_bits(),
        threaded.optimal.throughput.to_bits(),
        "throughput differs between 1 and 4 separation threads"
    );
    for (e, (a, b)) in serial
        .optimal
        .edge_load
        .iter()
        .zip(&threaded.optimal.edge_load)
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "edge {e} load differs between 1 and 4 separation threads"
        );
    }
    assert_eq!(serial.optimal.iterations, threaded.optimal.iterations);
    assert_eq!(serial.optimal.cuts, threaded.optimal.cuts);
    assert_eq!(serial.optimal.purged_cuts, threaded.optimal.purged_cuts);
    assert_eq!(
        serial.optimal.simplex_iterations,
        threaded.optimal.simplex_iterations
    );
}

#[test]
fn simulation_reports_are_deterministic() {
    let platform = fixture();
    let tree = build_structure(
        &platform,
        NodeId(0),
        HeuristicKind::GrowTree,
        CommModel::OnePort,
        SLICE,
    )
    .unwrap();
    let spec = MessageSpec::new(50.0 * SLICE, SLICE);
    let run = || {
        simulate_broadcast(
            &platform,
            &tree,
            &spec,
            &SimulationConfig::new(CommModel::OnePort),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.slice_completion, b.slice_completion);
}
