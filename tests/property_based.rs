//! Property-based tests (proptest) on the core invariants, exercised through
//! the public facade API with randomly generated platforms.

use broadcast_trees::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SLICE: f64 = 1.0e6;

/// Strategy: a connected random platform described by (nodes, density, seed).
fn platform_strategy() -> impl Strategy<Value = (usize, f64, u64)> {
    (4usize..18, 0.0f64..0.35, any::<u64>())
}

fn make_platform(nodes: usize, density: f64, seed: u64) -> Platform {
    let mut rng = StdRng::seed_from_u64(seed);
    random_platform(&RandomPlatformConfig::paper(nodes, density), &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every topology-based heuristic returns a spanning tree whose
    /// throughput is positive and never exceeds the MTP optimum.
    #[test]
    fn heuristic_trees_are_valid_and_bounded((nodes, density, seed) in platform_strategy()) {
        let platform = make_platform(nodes, density, seed);
        let optimal = optimal_throughput(&platform, NodeId(0), SLICE, OptimalMethod::CutGeneration)
            .expect("connected by construction");
        prop_assert!(optimal.throughput > 0.0);
        for kind in [HeuristicKind::PruneSimple, HeuristicKind::PruneDegree, HeuristicKind::GrowTree] {
            let tree = build_structure_with_loads(
                &platform, NodeId(0), kind, CommModel::OnePort, SLICE, Some(&optimal))
                .expect("heuristic succeeds");
            prop_assert!(tree.is_tree());
            let tp = steady_state_throughput(&platform, &tree, CommModel::OnePort, SLICE);
            prop_assert!(tp > 0.0);
            prop_assert!(tp <= optimal.throughput * (1.0 + 1e-6),
                "{:?}: {} > {}", kind, tp, optimal.throughput);
        }
    }

    /// The optimal edge loads returned by the cut-generation solver always
    /// satisfy the one-port constraints and support a per-destination flow
    /// of value TP (max-flow certificate).
    #[test]
    fn optimal_loads_are_port_feasible((nodes, density, seed) in platform_strategy()) {
        let platform = make_platform(nodes, density, seed);
        let optimal = optimal_throughput(&platform, NodeId(0), SLICE, OptimalMethod::CutGeneration)
            .unwrap();
        for u in platform.nodes() {
            let out: f64 = platform.graph().out_edges(u)
                .map(|e| optimal.edge_load[e.id.index()] * e.payload.link_time(SLICE))
                .sum();
            let inc: f64 = platform.graph().in_edges(u)
                .map(|e| optimal.edge_load[e.id.index()] * e.payload.link_time(SLICE))
                .sum();
            prop_assert!(out <= 1.0 + 1e-6, "out-port violated at {}: {}", u, out);
            prop_assert!(inc <= 1.0 + 1e-6, "in-port violated at {}: {}", u, inc);
        }
        for w in platform.nodes().filter(|&w| w != NodeId(0)) {
            let flow = broadcast_trees::net::max_flow(
                platform.graph(), NodeId(0), w, |e, _| optimal.edge_load[e.index()]);
            prop_assert!(flow.value >= optimal.throughput * (1.0 - 1e-5),
                "destination {}: flow {} < TP {}", w, flow.value, optimal.throughput);
        }
    }

    /// The steady-state period of a tree equals the largest weighted
    /// out-degree of its nodes — the analytic formula the heuristics optimise.
    #[test]
    fn tree_period_equals_max_weighted_out_degree((nodes, density, seed) in platform_strategy()) {
        let platform = make_platform(nodes, density, seed);
        let tree = build_structure(
            &platform, NodeId(0), HeuristicKind::GrowTree, CommModel::OnePort, SLICE)
            .expect("grow tree succeeds");
        let arb = tree.as_arborescence(&platform).unwrap();
        let mut expected: f64 = 0.0;
        for u in platform.nodes() {
            let sum: f64 = arb.child_edges(u).iter()
                .map(|&e| platform.link_time(e, SLICE))
                .sum();
            expected = expected.max(sum);
        }
        let period = steady_state_period(&platform, &tree, CommModel::OnePort, SLICE);
        prop_assert!((period - expected).abs() <= 1e-9 * expected.max(1.0));
    }

    /// Simulating a short pipelined broadcast always completes, delivers all
    /// slices, and the makespan is consistent with the analytic period.
    #[test]
    fn simulation_completes_and_is_bounded((nodes, density, seed) in platform_strategy()) {
        let platform = make_platform(nodes, density, seed);
        let tree = build_structure(
            &platform, NodeId(0), HeuristicKind::PruneDegree, CommModel::OnePort, SLICE)
            .expect("prune degree succeeds");
        let slices = 20usize;
        let spec = MessageSpec::new(slices as f64 * SLICE, SLICE);
        let report = simulate_broadcast(
            &platform, &tree, &spec, &SimulationConfig::new(CommModel::OnePort));
        prop_assert_eq!(report.slices, slices);
        prop_assert!(report.slice_completion.iter().all(|t| t.is_finite()));
        let period = steady_state_period(&platform, &tree, CommModel::OnePort, SLICE);
        // Lower bound: the bottleneck node works for (slices - 1) periods at least.
        prop_assert!(report.makespan + 1e-9 >= period * (slices as f64 - 1.0));
        // Upper bound: fill (at most height * max edge time per level, itself
        // bounded by node_count * period) plus one period per slice.
        let bound = period * (slices as f64 + platform.node_count() as f64);
        prop_assert!(report.makespan <= bound + 1e-9,
            "makespan {} exceeds bound {}", report.makespan, bound);
    }

    /// Relative performance reported by the evaluation harness is always in
    /// (0, 1] under the one-port model.
    #[test]
    fn relative_performance_is_a_valid_ratio((nodes, density, seed) in platform_strategy()) {
        let platform = make_platform(nodes, density, seed);
        let (_, rows) = evaluate_heuristics(
            &platform, NodeId(0), CommModel::OnePort, SLICE,
            &[HeuristicKind::GrowTree, HeuristicKind::Binomial]).unwrap();
        for row in rows {
            prop_assert!(row.relative > 0.0);
            prop_assert!(row.relative <= 1.0 + 1e-6);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The synthesized periodic schedule is always port-feasible (no node
    /// sends or receives twice within a round under the one-port model, and
    /// it passes the full validator), never beats the LP bound, and its
    /// simulated completion times are exactly periodic: consecutive batches
    /// finish exactly one analytic period apart (to 1e-9).
    #[test]
    fn synthesized_schedules_are_port_feasible_and_periodic(
        (nodes, density, seed) in (4usize..14, 0.0f64..0.35, any::<u64>())
    ) {
        let platform = make_platform(nodes, density, seed);
        let optimal = optimal_throughput(&platform, NodeId(0), SLICE, OptimalMethod::CutGeneration)
            .expect("connected by construction");
        let schedule = synthesize_schedule(
            &platform, NodeId(0), &optimal, SLICE,
            &SynthesisConfig::with_batch(8))
            .expect("synthesis succeeds");
        prop_assert!(schedule.validate(&platform).is_ok(),
            "validator rejected the schedule: {:?}", schedule.validate(&platform));
        // One-port round feasibility, checked directly against the rounds.
        for round in schedule.rounds() {
            let mut sends = vec![false; platform.node_count()];
            let mut recvs = vec![false; platform.node_count()];
            for &t in &round.transfers {
                let edge = schedule.transfers()[t].edge;
                let u = platform.graph().src(edge);
                let v = platform.graph().dst(edge);
                prop_assert!(!sends[u.index()], "node {} sends twice in a round", u);
                prop_assert!(!recvs[v.index()], "node {} receives twice in a round", v);
                sends[u.index()] = true;
                recvs[v.index()] = true;
            }
        }
        // The schedule realises at most the LP optimum.
        prop_assert!(schedule.throughput() <= optimal.throughput * (1.0 + 1e-6),
            "schedule {} beats the LP bound {}", schedule.throughput(), optimal.throughput);
        // Simulated completions are exactly periodic with the analytic period.
        let batch = schedule.slices_per_period();
        let spec = MessageSpec::new(4.0 * batch as f64 * SLICE, SLICE);
        let report = simulate_schedule(&platform, &schedule, &spec);
        for k in 0..report.slices - batch {
            let gap = report.slice_completion[k + batch] - report.slice_completion[k];
            prop_assert!((gap - schedule.period()).abs() <= 1e-9 * schedule.period().max(1.0),
                "slice {}: batch gap {} vs analytic period {}", k, gap, schedule.period());
        }
    }
}
