//! Validation of the discrete-event simulator against the closed-form
//! steady-state analysis, across heuristics, platforms and port models.

use broadcast_trees::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SLICE: f64 = 1.0e6;

/// The simulated steady-state period of a *tree* must match the analytic
/// `max weighted out-degree` formula to within a small relative error.
#[test]
fn simulated_period_matches_analytic_one_port() {
    let mut rng = StdRng::seed_from_u64(7);
    for &nodes in &[8usize, 15, 25] {
        let platform = random_platform(&RandomPlatformConfig::paper(nodes, 0.15), &mut rng);
        for kind in [
            HeuristicKind::GrowTree,
            HeuristicKind::PruneDegree,
            HeuristicKind::PruneSimple,
        ] {
            let tree =
                build_structure(&platform, NodeId(0), kind, CommModel::OnePort, SLICE).unwrap();
            let analytic = steady_state_period(&platform, &tree, CommModel::OnePort, SLICE);
            let spec = MessageSpec::new(300.0 * SLICE, SLICE);
            let report = simulate_broadcast(
                &platform,
                &tree,
                &spec,
                &SimulationConfig::new(CommModel::OnePort),
            );
            let simulated = report.estimated_period();
            let rel_err = (simulated - analytic).abs() / analytic;
            assert!(
                rel_err < 0.02,
                "{kind:?} on {nodes} nodes: simulated {simulated} vs analytic {analytic}"
            );
        }
    }
}

#[test]
fn simulated_period_matches_analytic_multi_port() {
    let mut rng = StdRng::seed_from_u64(8);
    let platform = random_platform(&RandomPlatformConfig::paper(15, 0.15), &mut rng)
        .with_multiport_overheads(0.8, SLICE);
    let tree = build_structure(
        &platform,
        NodeId(0),
        HeuristicKind::GrowTree,
        CommModel::MultiPort,
        SLICE,
    )
    .unwrap();
    let analytic = steady_state_period(&platform, &tree, CommModel::MultiPort, SLICE);
    let spec = MessageSpec::new(300.0 * SLICE, SLICE);
    let report = simulate_broadcast(
        &platform,
        &tree,
        &spec,
        &SimulationConfig::new(CommModel::MultiPort),
    );
    let simulated = report.estimated_period();
    let rel_err = (simulated - analytic).abs() / analytic;
    assert!(
        rel_err < 0.02,
        "multi-port: simulated {simulated} vs analytic {analytic}"
    );
}

/// The simulator never beats the analytic steady state (it also pays the
/// pipeline fill), and pipelining always beats the atomic broadcast for
/// multi-slice messages.
#[test]
fn simulation_bounds_are_consistent() {
    let mut rng = StdRng::seed_from_u64(9);
    let platform = random_platform(&RandomPlatformConfig::paper(12, 0.2), &mut rng);
    let tree = build_structure(
        &platform,
        NodeId(0),
        HeuristicKind::GrowTree,
        CommModel::OnePort,
        SLICE,
    )
    .unwrap();
    let total = 50.0 * SLICE;
    let spec = MessageSpec::new(total, SLICE);
    let report = simulate_broadcast(
        &platform,
        &tree,
        &spec,
        &SimulationConfig::new(CommModel::OnePort),
    );
    let period = steady_state_period(&platform, &tree, CommModel::OnePort, SLICE);
    // Lower bound: the source alone needs (slices - 1) periods plus the time
    // of the first slice to reach the farthest node.
    assert!(report.makespan >= period * (spec.slice_count() as f64 - 1.0) - 1e-9);
    // Pipelining the 50 slices beats sending the whole message atomically.
    let atomic = sta_makespan(&platform, &tree, total).unwrap();
    assert!(report.makespan < atomic);
    // The analytic completion-time model is close to the simulation.
    let predicted = pipelined_completion_time(&platform, &tree, CommModel::OnePort, &spec);
    let rel_err = (predicted - report.makespan).abs() / report.makespan;
    assert!(
        rel_err < 0.05,
        "predicted {predicted} vs simulated {}",
        report.makespan
    );
}

/// The binomial overlay (not a tree) still delivers every slice to every
/// node in the simulator.
#[test]
fn binomial_overlay_simulates_correctly() {
    let mut rng = StdRng::seed_from_u64(10);
    let platform = random_platform(&RandomPlatformConfig::paper(17, 0.1), &mut rng);
    let overlay = build_structure(
        &platform,
        NodeId(0),
        HeuristicKind::Binomial,
        CommModel::OnePort,
        SLICE,
    )
    .unwrap();
    let spec = MessageSpec::new(30.0 * SLICE, SLICE);
    let report = simulate_broadcast(
        &platform,
        &overlay,
        &spec,
        &SimulationConfig::new(CommModel::OnePort),
    );
    assert_eq!(report.slices, 30);
    assert!(report.slice_completion.iter().all(|t| t.is_finite()));
    assert!(report.makespan > 0.0);
}
