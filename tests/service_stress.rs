//! Multi-session stress for the solver service (`bcast-service`).
//!
//! One service instance owns many named sessions at once — different
//! platform families, different seeds, churn and plain-drift traces
//! mixed — and the harness drives them through an *interleaved* command
//! schedule: every round, each session advances one step and answers a
//! query, then a single `Snapshot` canonicalizes the whole fleet.
//!
//! Contracts:
//!
//! * **isolation** — each session's per-step log is bit-identical to a
//!   solo run of the same session in its own service (with snapshots at
//!   the same per-session positions, since canonicalization is a state
//!   transition and part of the deterministic schedule);
//! * **crash-safety under load** — a kill fired mid-interleaving
//!   recovers to the uninterrupted multi-session run, every session
//!   intact, per-step bits equal.

use bcast_service::{
    session::generate_trace, Command, FaultPlan, KillPoint, Outcome, PlatformFamily, Service,
    ServiceError, SessionSpec, StepStats,
};
use broadcast_trees::prelude::DriftEvent;
use std::path::PathBuf;

const SLICE: f64 = 1.0e6;
const STEPS: usize = 3;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bcast-stress-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A churn spec whose trace contains at least one join and one leave
/// (seed-probed deterministically, like the drift binary).
fn churny_spec(family: PlatformFamily, platform_seed: u64, base_drift_seed: u64) -> SessionSpec {
    for probe in 0..64u64 {
        let spec = SessionSpec {
            family,
            platform_seed,
            slice_size: SLICE,
            batch: 16,
            drift_steps: STEPS,
            drift_seed: base_drift_seed + 1000 * probe,
            churn: true,
        };
        let trace = generate_trace(&spec);
        let mut joins = 0usize;
        let mut leaves = 0usize;
        for step in 0..trace.len() {
            for event in &trace.step(step).events {
                match event {
                    DriftEvent::NodeJoin(_) => joins += 1,
                    DriftEvent::NodeLeave(_) => leaves += 1,
                    _ => {}
                }
            }
        }
        if joins > 0 && leaves > 0 {
            return spec;
        }
    }
    panic!("no churny seed found for {family:?} in 64 probes");
}

fn drift_spec(family: PlatformFamily, platform_seed: u64, drift_seed: u64) -> SessionSpec {
    SessionSpec {
        family,
        platform_seed,
        slice_size: SLICE,
        batch: 16,
        drift_steps: STEPS,
        drift_seed,
        churn: false,
    }
}

/// Six sessions: one churn + one plain-drift trace per family, all on
/// *distinct* platform seeds so the digest cache cannot couple them and
/// the solo-vs-fleet differential is a pure isolation check.
fn fleet() -> Vec<(&'static str, SessionSpec)> {
    vec![
        (
            "rand-churn",
            churny_spec(
                PlatformFamily::Random {
                    nodes: 11,
                    density: 0.14,
                },
                9101,
                0xA001,
            ),
        ),
        (
            "rand-drift",
            drift_spec(
                PlatformFamily::Random {
                    nodes: 10,
                    density: 0.16,
                },
                9102,
                0xA002,
            ),
        ),
        (
            "tiers-churn",
            churny_spec(
                PlatformFamily::Tiers {
                    nodes: 12,
                    density: 0.10,
                },
                9103,
                0xA003,
            ),
        ),
        (
            "tiers-drift",
            drift_spec(
                PlatformFamily::Tiers {
                    nodes: 11,
                    density: 0.12,
                },
                9104,
                0xA004,
            ),
        ),
        (
            "gauss-churn",
            churny_spec(PlatformFamily::Gaussian { nodes: 11 }, 9105, 0xA005),
        ),
        (
            "gauss-drift",
            drift_spec(PlatformFamily::Gaussian { nodes: 10 }, 9106, 0xA006),
        ),
    ]
}

/// The step command (drift vs churn) a trace-following client issues for
/// `step` of `spec`'s trace.
fn step_command(name: &str, spec: &SessionSpec, step: usize) -> Command {
    let trace = generate_trace(spec);
    let churn = step > 0 && !trace.remap(step - 1, step).is_identity();
    if churn {
        Command::NodeChurn {
            session: name.into(),
        }
    } else {
        Command::DriftStep {
            session: name.into(),
        }
    }
}

/// The interleaved fleet schedule: create everything, then round-robin —
/// each round advances every session one step and queries it, then one
/// `Snapshot` canonicalizes the fleet — then a final warm resolve per
/// session.
fn interleaved_script(fleet: &[(&'static str, SessionSpec)]) -> Vec<Command> {
    let mut commands: Vec<Command> = fleet
        .iter()
        .map(|(name, spec)| Command::CreateSession {
            name: (*name).into(),
            spec: *spec,
        })
        .collect();
    let rounds = generate_trace(&fleet[0].1).len();
    for step in 0..rounds {
        for (name, spec) in fleet {
            commands.push(step_command(name, spec, step));
            commands.push(Command::QuerySchedule {
                session: (*name).into(),
            });
        }
        commands.push(Command::Snapshot);
    }
    for (name, _) in fleet {
        commands.push(Command::Resolve {
            session: (*name).into(),
        });
    }
    commands
}

/// The solo schedule of one session, with `Snapshot` at the same
/// per-session positions as the interleaved run (after every own step):
/// canonicalization is a state transition, so bit-identity is only owed
/// between runs that canonicalize at the same points.
fn solo_script(name: &str, spec: &SessionSpec) -> Vec<Command> {
    let mut commands = vec![Command::CreateSession {
        name: name.into(),
        spec: *spec,
    }];
    for step in 0..generate_trace(spec).len() {
        commands.push(step_command(name, spec, step));
        commands.push(Command::QuerySchedule {
            session: name.into(),
        });
        commands.push(Command::Snapshot);
    }
    commands.push(Command::Resolve {
        session: name.into(),
    });
    commands
}

fn bits_of(log: &[StepStats]) -> Vec<(usize, u64, usize, usize, u64, u64)> {
    log.iter()
        .map(|s| {
            (
                s.step,
                s.tp.to_bits(),
                s.pivots,
                s.repair_ops,
                s.efficiency.to_bits(),
                s.sim_tp.to_bits(),
            )
        })
        .collect()
}

fn drive(service: &mut Service, commands: &[Command]) {
    for command in commands {
        let outcome = service.apply(command).expect("stress apply");
        assert!(
            !matches!(outcome, Outcome::Rejected { .. }),
            "schedule follows the contract, nothing rejects: {outcome:?}"
        );
    }
}

fn fleet_logs(service: &Service, fleet: &[(&'static str, SessionSpec)]) -> Vec<Vec<StepStats>> {
    fleet
        .iter()
        .map(|(name, _)| {
            service
                .session(name)
                .expect("session exists")
                .log()
                .to_vec()
        })
        .collect()
}

/// Interleaving many sessions through one service changes nothing about
/// any of them: per-session step logs are bit-identical to solo runs.
#[test]
fn interleaved_sessions_match_solo_runs_bit_for_bit() {
    let fleet = fleet();
    let dir = tmp_dir("fleet");
    let mut service = Service::open(&dir, FaultPlan::none()).expect("open");
    drive(&mut service, &interleaved_script(&fleet));
    let interleaved = fleet_logs(&service, &fleet);
    assert_eq!(
        service.session_names().len(),
        fleet.len(),
        "every session lives"
    );
    for ((name, spec), fleet_log) in fleet.iter().zip(&interleaved) {
        assert_eq!(fleet_log.len(), STEPS + 1, "{name}: full trace walked");
        let solo_dir = tmp_dir(&format!("solo-{name}"));
        let mut solo = Service::open(&solo_dir, FaultPlan::none()).expect("open solo");
        drive(&mut solo, &solo_script(name, spec));
        let solo_log = solo.session(name).expect("solo session").log().to_vec();
        assert_eq!(
            bits_of(fleet_log),
            bits_of(&solo_log),
            "{name}: interleaving perturbed the session"
        );
        assert_eq!(*fleet_log, solo_log, "{name}: full stats differ");
        let _ = std::fs::remove_dir_all(&solo_dir);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kills fired mid-interleaving — including inside a fleet-wide snapshot
/// write — recover to the uninterrupted multi-session run: every session
/// intact, every per-step log bit-identical.
#[test]
fn fleet_recovers_from_kills_under_interleaved_load() {
    let fleet = fleet();
    let commands = interleaved_script(&fleet);
    let dir = tmp_dir("fleet-base");
    let mut service = Service::open(&dir, FaultPlan::none()).expect("open");
    drive(&mut service, &commands);
    let reference = fleet_logs(&service, &fleet);
    let _ = std::fs::remove_dir_all(&dir);

    let first_snapshot_seq = 1 + commands
        .iter()
        .position(|c| matches!(c, Command::Snapshot))
        .expect("schedule snapshots") as u64;
    let mid = commands.len() as u64 / 2;
    let kills = [
        KillPoint::BeforeAppend(mid),
        KillPoint::AfterExec(mid),
        KillPoint::MidAppend(commands.len() as u64 - 2),
        KillPoint::MidSnapshotWrite(first_snapshot_seq),
    ];
    for kill in kills {
        let dir = tmp_dir(&format!("fleet-{kill:?}"));
        {
            let mut armed = Service::open(&dir, FaultPlan::kill_at(kill)).expect("open armed");
            let mut killed = false;
            for command in &commands {
                match armed.apply(command) {
                    Ok(_) => {}
                    Err(ServiceError::Killed(point)) => {
                        assert_eq!(point, kill);
                        killed = true;
                        break;
                    }
                    Err(e) => panic!("unexpected error before the kill: {e}"),
                }
            }
            assert!(killed, "kill {kill:?} never fired");
        }
        let mut recovered = Service::open(&dir, FaultPlan::none()).expect("recovery");
        let resume_at = (recovered.next_seq() - 1) as usize;
        assert!(resume_at <= commands.len(), "{kill:?}");
        drive(&mut recovered, &commands[resume_at..]);
        let logs = fleet_logs(&recovered, &fleet);
        for ((name, _), (got, want)) in fleet.iter().zip(logs.iter().zip(&reference)) {
            assert_eq!(
                bits_of(got),
                bits_of(want),
                "{name}: diverged after {kill:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
