//! Integration tests of the LP → schedule → simulator loop.
//!
//! The headline claim (ISSUE 2 acceptance criterion): on the Tiers, Random,
//! and Gaussian platform families with at least 20 processors, the
//! *simulated* throughput of the synthesized periodic schedule is at least
//! the best single-tree heuristic's and within 5% of the LP optimum. This
//! is the operational version of the paper's optimality story — the LP
//! bound is not just a bound, it is achievable by an executable schedule.

use broadcast_trees::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SLICE: f64 = 1.0e6;

fn families() -> Vec<(&'static str, Platform)> {
    vec![
        (
            "Random(20, 0.12)",
            random_platform(
                &RandomPlatformConfig::paper(20, 0.12),
                &mut StdRng::seed_from_u64(2025),
            ),
        ),
        (
            "Tiers(30, 0.10)",
            tiers_platform(&TiersConfig::paper_30(), &mut StdRng::seed_from_u64(2025)),
        ),
        (
            "Gaussian(20)",
            gaussian_platform(
                &GaussianPlatformConfig::paper(20),
                &mut StdRng::seed_from_u64(2025),
            ),
        ),
    ]
}

/// Best single-tree heuristic throughput and the candidate structures.
fn best_tree(platform: &Platform, optimal: &OptimalThroughput) -> (f64, Vec<BroadcastStructure>) {
    let mut best: f64 = 0.0;
    let mut candidates = Vec::new();
    for kind in HeuristicKind::ALL {
        if let Ok(structure) = build_structure_with_loads(
            platform,
            NodeId(0),
            kind,
            CommModel::OnePort,
            SLICE,
            Some(optimal),
        ) {
            best = best.max(steady_state_throughput(
                platform,
                &structure,
                CommModel::OnePort,
                SLICE,
            ));
            candidates.push(structure);
        }
    }
    (best, candidates)
}

#[test]
fn schedule_beats_heuristics_and_stays_within_5_percent_of_lp() {
    for (name, platform) in families() {
        assert!(platform.node_count() >= 20, "{name}: too small");
        let optimal = optimal_throughput(&platform, NodeId(0), SLICE, OptimalMethod::CutGeneration)
            .unwrap_or_else(|e| panic!("{name}: LP failed: {e}"));
        let (best_heuristic, candidates) = best_tree(&platform, &optimal);

        let schedule = synthesize_schedule_with_tree_fallback(
            &platform,
            NodeId(0),
            &optimal,
            SLICE,
            &SynthesisConfig::default(),
            &candidates,
        )
        .unwrap_or_else(|e| panic!("{name}: synthesis failed: {e}"));
        schedule.validate(&platform).expect("schedule is feasible");

        // Simulate the schedule over several periods and measure.
        let batch = schedule.slices_per_period();
        let spec = MessageSpec::new(6.0 * batch as f64 * SLICE, SLICE);
        let report = simulate_schedule(&platform, &schedule, &spec);
        let simulated = report.batch_throughput(batch);

        assert!(
            simulated >= best_heuristic * (1.0 - 1e-9),
            "{name}: schedule {simulated} below best heuristic {best_heuristic}"
        );
        assert!(
            simulated >= 0.95 * optimal.throughput,
            "{name}: schedule {simulated} below 95% of LP optimum {}",
            optimal.throughput
        );
        assert!(
            simulated <= optimal.throughput * (1.0 + 1e-6),
            "{name}: schedule {simulated} beats the LP bound {} — infeasible",
            optimal.throughput
        );
    }
}

#[test]
fn schedule_strictly_beats_every_tree_when_trees_are_suboptimal() {
    // On dense random platforms single trees lose 30–40% to the MTP bound;
    // the synthesized schedule must convert most of that gap into real,
    // simulated throughput.
    let platform = random_platform(
        &RandomPlatformConfig::paper(24, 0.15),
        &mut StdRng::seed_from_u64(77),
    );
    let optimal =
        optimal_throughput(&platform, NodeId(0), SLICE, OptimalMethod::CutGeneration).unwrap();
    let (best_heuristic, candidates) = best_tree(&platform, &optimal);
    let schedule = synthesize_schedule_with_tree_fallback(
        &platform,
        NodeId(0),
        &optimal,
        SLICE,
        &SynthesisConfig::default(),
        &candidates,
    )
    .unwrap();
    let spec = MessageSpec::new(6.0 * schedule.slices_per_period() as f64 * SLICE, SLICE);
    let report = simulate_schedule(&platform, &schedule, &spec);
    let simulated = report.batch_throughput(schedule.slices_per_period());
    assert!(
        simulated > best_heuristic * 1.1,
        "expected a clear multi-tree win: schedule {simulated} vs best tree {best_heuristic}"
    );
}

#[test]
fn simulated_period_matches_the_analytic_period_exactly() {
    let platform = gaussian_platform(
        &GaussianPlatformConfig::paper(20),
        &mut StdRng::seed_from_u64(3),
    );
    let optimal =
        optimal_throughput(&platform, NodeId(0), SLICE, OptimalMethod::CutGeneration).unwrap();
    let schedule = synthesize_schedule(
        &platform,
        NodeId(0),
        &optimal,
        SLICE,
        &SynthesisConfig::default(),
    )
    .unwrap();
    let batch = schedule.slices_per_period();
    let spec = MessageSpec::new(4.0 * batch as f64 * SLICE, SLICE);
    let report = simulate_schedule(&platform, &schedule, &spec);
    for k in 0..report.slices - batch {
        let gap = report.slice_completion[k + batch] - report.slice_completion[k];
        assert!(
            (gap - schedule.period()).abs() <= 1e-9 * schedule.period().max(1.0),
            "slice {k}: batch gap {gap} vs period {}",
            schedule.period()
        );
    }
}
