//! Differential drift-test harness for dynamic platforms.
//!
//! Every test walks a deterministic link-cost drift trace (multiplicative
//! perturbations plus soft link failures/recoveries) and pits the two
//! solver pipelines against each other at **every step**:
//!
//! * **warm** — one [`CutGenSession`] carries the simplex basis and the cut
//!   pool across steps (the one-port rows are coefficient-updated in
//!   place), and `resynthesize_schedule` repairs the previous period's
//!   arborescence packing and timetable;
//! * **cold** — the step's platform snapshot is solved from scratch
//!   (`warm_start: false`, empty cut pool) and a fresh schedule is
//!   synthesized.
//!
//! The contract: identical throughput at 1e-6 relative at every step —
//! including steps where links fail or recover — with a valid (repaired)
//! schedule each step, plus the headline perf assert of the dynamic-
//! platform work: on a 40-node Tiers trace the cross-step warm re-solves
//! use **≥ 5× fewer simplex pivots per drift step** than the cold
//! baseline.

use broadcast_trees::core::optimal::cut_gen;
use broadcast_trees::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SLICE: f64 = 1.0e6;

fn assert_rel_close(a: f64, b: f64, tol: f64, what: &str) {
    assert!(
        (a - b).abs() <= tol * a.abs().max(b.abs()).max(1e-12),
        "{what}: warm {a} vs cold {b}"
    );
}

/// Cold reference for one snapshot: a from-scratch cut-generation solve.
fn cold_solve(platform: &Platform) -> CutGenResult {
    cut_gen::solve_with(
        platform,
        NodeId(0),
        SLICE,
        &CutGenOptions {
            warm_start: false,
            ..CutGenOptions::default()
        },
    )
    .expect("cold step solvable")
}

/// Walks `trace` with the warm pipeline, checking warm ≡ cold and schedule
/// validity at every step. Returns `(warm_pivots, cold_pivots)` summed over
/// the drift steps (step 0 is a cold start for both sides and excluded).
fn differential_walk(label: &str, trace: &DriftTrace, batch: usize) -> (usize, usize) {
    let source = trace.source();
    let config = SynthesisConfig::with_batch(batch);
    let mut session = CutGenSession::new(trace.base(), source, SLICE, CutGenOptions::default())
        .expect("base platform solvable");
    let mut previous: Option<PeriodicSchedule> = None;
    let mut warm_pivots = 0usize;
    let mut cold_pivots = 0usize;
    for step in 0..trace.len() {
        let snapshot = trace.platform_at(step);
        let warm = session.solve_step(&snapshot).expect("warm step solvable");
        let cold = cold_solve(&snapshot);
        assert_rel_close(
            warm.optimal.throughput,
            cold.optimal.throughput,
            1e-6,
            &format!("{label} step {step} throughput"),
        );
        // The warm loads must support the claimed throughput per
        // destination (primal feasibility of the full cut LP under the
        // *drifted* costs).
        for w in snapshot.nodes().filter(|&w| w != source) {
            let flow =
                broadcast_trees::net::maxflow::max_flow(snapshot.graph(), source, w, |e, _| {
                    warm.optimal.edge_load[e.index()]
                });
            assert!(
                flow.value >= warm.optimal.throughput * (1.0 - 1e-5),
                "{label} step {step}: destination {w} flow {} < TP {}",
                flow.value,
                warm.optimal.throughput
            );
        }
        // Warm side: repair the previous schedule. Cold side: synthesize
        // fresh. Both must validate against the drifted snapshot.
        let (schedule, report) = match &previous {
            None => (
                synthesize_schedule(&snapshot, source, &warm.optimal, SLICE, &config)
                    .expect("synthesis succeeds"),
                RepairReport::default(),
            ),
            Some(prev) => {
                resynthesize_schedule(&snapshot, source, &warm.optimal, SLICE, &config, prev)
                    .expect("repair succeeds")
            }
        };
        schedule
            .validate(&snapshot)
            .unwrap_or_else(|e| panic!("{label} step {step}: repaired schedule invalid: {e}"));
        assert_eq!(
            schedule.slices_per_period(),
            batch,
            "{label} step {step}: repair changed the batch size"
        );
        if step > 0 && !report.full_rebuild {
            assert_eq!(
                report.kept_trees + report.rebuilt_trees,
                batch,
                "{label} step {step}: repair lost trees ({report:?})"
            );
        }
        let cold_schedule = synthesize_schedule(&snapshot, source, &cold.optimal, SLICE, &config)
            .expect("cold synthesis succeeds");
        cold_schedule
            .validate(&snapshot)
            .unwrap_or_else(|e| panic!("{label} step {step}: cold schedule invalid: {e}"));
        if step > 0 {
            warm_pivots += warm.optimal.simplex_iterations;
            cold_pivots += cold.optimal.simplex_iterations;
            assert!(
                warm.reused_cuts > 0,
                "{label} step {step}: the session reused no cuts"
            );
        }
        previous = Some(schedule);
    }
    (warm_pivots, cold_pivots)
}

/// Warm ≡ cold at every step of a drift trace, on all three platform
/// families, with link failures and recoveries included.
#[test]
fn warm_cross_step_resolve_matches_cold_on_all_families() {
    let mut platforms: Vec<(&str, Platform)> = Vec::new();
    let mut rng = StdRng::seed_from_u64(3024);
    platforms.push((
        "random-16",
        random_platform(&RandomPlatformConfig::paper(16, 0.12), &mut rng),
    ));
    let mut rng = StdRng::seed_from_u64(3025);
    platforms.push((
        "tiers-20",
        tiers_platform(&TiersConfig::paper(20, 0.10), &mut rng),
    ));
    let mut rng = StdRng::seed_from_u64(3026);
    platforms.push((
        "gaussian-16",
        gaussian_platform(&GaussianPlatformConfig::paper(16), &mut rng),
    ));
    for (i, (label, platform)) in platforms.iter().enumerate() {
        let trace = DriftTrace::generate(
            platform,
            NodeId(0),
            &DriftConfig::with_failures(6, 0xD21F + i as u64),
        );
        differential_walk(label, &trace, 12);
    }
}

/// Steps with link failures are the adversarial case (the LP loses a whole
/// edge's capacity at once): force a churn-heavy trace and require that
/// failures actually happened, then check warm ≡ cold on exactly those
/// steps as part of the walk.
#[test]
fn failure_steps_keep_warm_equal_to_cold() {
    let mut rng = StdRng::seed_from_u64(3027);
    let platform = random_platform(&RandomPlatformConfig::paper(14, 0.15), &mut rng);
    let config = DriftConfig {
        failure_rate: 0.15,
        recovery_rate: 0.3,
        ..DriftConfig::gentle(8, 911)
    };
    let trace = DriftTrace::generate(&platform, NodeId(0), &config);
    let churn: usize = (0..trace.len()).map(|s| trace.step(s).events.len()).sum();
    assert!(churn > 0, "the churn trace produced no failure events");
    differential_walk("churn-14", &trace, 8);
}

/// The acceptance criterion of the dynamic-platform work: on a 40-node
/// Tiers drift trace, the cross-step warm re-solves use at least 5× fewer
/// simplex pivots than solving every step cold (measured over the drift
/// steps; step 0 is a cold start on both sides). Measured ratio at this
/// seed: ~79× in release — 5× leaves room for pricing changes without
/// masking a real regression.
#[test]
fn warm_start_cuts_pivots_5x_on_a_tiers_40_drift_trace() {
    let mut rng = StdRng::seed_from_u64(40);
    let platform = tiers_platform(&TiersConfig::paper(40, 0.10), &mut rng);
    let trace = DriftTrace::generate(&platform, NodeId(0), &DriftConfig::with_failures(5, 4040));
    let (warm, cold) = differential_walk("tiers-40", &trace, 12);
    eprintln!("tiers-40 drift steps: warm {warm} pivots vs cold {cold} pivots");
    assert!(
        5 * warm <= cold,
        "expected a ≥ 5x pivot drop across the drift steps: warm {warm} vs cold {cold}"
    );
}

/// The repaired schedule replayed by the simulator achieves the schedule's
/// own throughput at every step (LP → repair → timetable → execution).
#[test]
fn repaired_schedules_replay_at_their_stated_throughput() {
    let mut rng = StdRng::seed_from_u64(3028);
    let platform = random_platform(&RandomPlatformConfig::paper(12, 0.15), &mut rng);
    let trace = DriftTrace::generate(&platform, NodeId(0), &DriftConfig::with_failures(5, 555));
    let source = trace.source();
    let batch = 8usize;
    let config = SynthesisConfig::with_batch(batch);
    let spec = MessageSpec::new(5.0 * batch as f64 * SLICE, SLICE);
    let mut session = CutGenSession::new(trace.base(), source, SLICE, CutGenOptions::default())
        .expect("base solvable");
    let mut previous: Option<PeriodicSchedule> = None;
    for step in 0..trace.len() {
        let snapshot = trace.platform_at(step);
        let optimal = session.solve_step(&snapshot).expect("solvable").optimal;
        let schedule = match &previous {
            None => synthesize_schedule(&snapshot, source, &optimal, SLICE, &config)
                .expect("synthesis succeeds"),
            Some(prev) => {
                resynthesize_schedule(&snapshot, source, &optimal, SLICE, &config, prev)
                    .expect("repair succeeds")
                    .0
            }
        };
        let report = simulate_schedule(&snapshot, &schedule, &spec);
        let simulated = report.batch_throughput(batch);
        assert_rel_close(
            simulated,
            schedule.throughput(),
            1e-6,
            &format!("step {step} simulated throughput"),
        );
        assert!(
            schedule.efficiency() <= 1.0 + 1e-6,
            "step {step}: schedule beats the LP bound"
        );
        previous = Some(schedule);
    }
}

/// Regression for the seed-2004 stall: step 7 of the random-20 trace used
/// to drive the sparse Devex trajectory into a basis the old product-form
/// eta refactorization declared singular (its partial pivoting was
/// restricted to unclaimed rows, so cancellation lost a basis the dense
/// tableau's full-row pivoting absorbs), surfacing first as a spurious
/// `IterationLimit` and later as a silent dense-engine fallback. With the
/// Markowitz LU the sparse engine must solve this natively: the
/// `lp.singular_fallback` counter stays at zero while the solve agrees
/// with the dense reference.
#[test]
fn seed_2004_random20_step7_solves_natively_on_sparse() {
    let mut rng = StdRng::seed_from_u64(2004);
    let platform = random_platform(&RandomPlatformConfig::paper(20, 0.12), &mut rng);
    let trace = DriftTrace::generate(&platform, NodeId(0), &DriftConfig::with_failures(10, 2004));
    let snapshot = trace.platform_at(7);
    bcast_obs::enable();
    let sparse = cold_solve(&snapshot);
    let fallbacks = bcast_obs::counters_snapshot()
        .iter()
        .find(|(name, _)| *name == "lp.singular_fallback")
        .map_or(0, |&(_, v)| v);
    bcast_obs::disable();
    bcast_obs::reset_metrics();
    assert_eq!(
        fallbacks, 0,
        "the sparse engine hit the dense fallback {fallbacks} time(s) on the seed-2004 basis"
    );
    let dense = cut_gen::solve_with(
        &snapshot,
        NodeId(0),
        SLICE,
        &CutGenOptions {
            warm_start: false,
            lp_engine: broadcast_trees::core::SimplexEngine::Dense,
            ..CutGenOptions::default()
        },
    )
    .expect("dense reference solvable");
    assert_rel_close(
        sparse.optimal.throughput,
        dense.optimal.throughput,
        1e-6,
        "seed-2004 step 7 throughput",
    );
}
