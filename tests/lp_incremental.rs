//! Differential test harness for the incremental (warm-started dual simplex)
//! LP solver.
//!
//! Every test pits the two solver paths against each other on the *same*
//! row sequence:
//!
//! * **warm** — one [`SimplexState`] kept alive across rounds, rows appended
//!   and deleted in place, re-optimized dually from the prior basis;
//! * **cold** — a fresh [`LpProblem`] solved from scratch with the two-phase
//!   primal simplex (the pre-incremental reference).
//!
//! The contract: identical objective values (1e-9 relative on the LP level,
//! where both sides solve literally the same problem), primal feasibility at
//! every round, identical infeasibility verdicts — and, on the 65-node Tiers
//! sweep point, at least a 2× drop in total simplex pivots per cut-generation
//! run (the acceptance criterion of the warm-start work).

use broadcast_trees::core::optimal::cut_gen;
use broadcast_trees::lp::{ConstraintOp, LpError, LpProblem, Sense, SimplexOptions, SimplexState};
use broadcast_trees::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic LCG in [0, 1) so the LP data does not depend on the
/// vendored RNG's stream (these tests pin solver behaviour, not RNG
/// behaviour).
fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 32) as f64) / (u64::from(u32::MAX) + 1) as f64
}

/// Relative agreement within `tol`.
fn assert_rel_close(a: f64, b: f64, tol: f64, what: &str) {
    assert!(
        (a - b).abs() <= tol * a.abs().max(b.abs()).max(1e-12),
        "{what}: warm {a} vs cold {b}"
    );
}

/// A random bounded packing LP: `max Σ c_i x_i` with per-variable bounds and
/// a few joint packing rows — always feasible and bounded.
fn random_base(vars: usize, rows: usize, state: &mut u64) -> LpProblem {
    let mut lp = LpProblem::new(Sense::Maximize);
    let ids: Vec<_> = (0..vars)
        .map(|i| lp.add_var(format!("x{i}"), 0.5 + 4.0 * lcg(state)))
        .collect();
    for &v in &ids {
        lp.add_le(&[(v, 1.0)], 1.0 + 7.0 * lcg(state));
    }
    for _ in 0..rows {
        let terms: Vec<_> = ids.iter().map(|&v| (v, 0.1 + 2.0 * lcg(state))).collect();
        lp.add_le(&terms, 2.0 + 6.0 * lcg(state));
    }
    lp
}

/// A random extra row biased to *cut off* the current optimum (so the dual
/// simplex genuinely has to pivot): either a tightened packing row or a
/// fully degenerate `Σ ±x ≥ 0` row — the class that used to stall phase 1.
fn random_extra_row(
    lp: &LpProblem,
    current: &[f64],
    state: &mut u64,
) -> (Vec<(broadcast_trees::lp::VarId, f64)>, ConstraintOp, f64) {
    let vars = lp.num_vars();
    if lcg(state) < 0.3 {
        // Degenerate difference row x_i − x_j ≥ 0.
        let i = (lcg(state) * vars as f64) as usize % vars;
        let mut j = (lcg(state) * vars as f64) as usize % vars;
        if j == i {
            j = (j + 1) % vars;
        }
        (
            vec![
                (broadcast_trees::lp::VarId(i), 1.0),
                (broadcast_trees::lp::VarId(j), -1.0),
            ],
            ConstraintOp::Ge,
            0.0,
        )
    } else {
        // Packing row whose rhs is a fraction of its value at the current
        // optimum: binding by construction (when the optimum is nonzero).
        let terms: Vec<_> = (0..vars)
            .map(|i| (broadcast_trees::lp::VarId(i), 0.1 + 2.0 * lcg(state)))
            .collect();
        let at_optimum: f64 = terms.iter().map(|&(v, c)| c * current[v.index()]).sum();
        let rhs = at_optimum * (0.55 + 0.4 * lcg(state));
        (terms, ConstraintOp::Le, rhs.max(0.05))
    }
}

#[test]
fn warm_and_cold_agree_on_random_append_sequences() {
    'seeds: for seed in 1u64..=6 {
        let mut state = 0x9E3779B97F4A7C15u64.wrapping_mul(seed);
        let vars = 4 + (seed as usize % 5);
        let base = random_base(vars, 3, &mut state);
        let mut warm = SimplexState::new(&base, SimplexOptions::default()).unwrap();
        let mut solution = warm.solve().unwrap();
        for round in 0..8 {
            let (terms, op, rhs) = random_extra_row(&base, &solution.values, &mut state);
            warm.add_row(&terms, op, rhs).unwrap();
            let cold_problem = warm.to_problem();
            match (warm.resolve(), cold_problem.solve()) {
                (Ok(w), Ok(c)) => {
                    assert_rel_close(
                        w.objective,
                        c.objective,
                        1e-9,
                        &format!("seed {seed} round {round}"),
                    );
                    assert!(
                        cold_problem.max_violation(&w.values) < 1e-6,
                        "seed {seed} round {round}: warm point infeasible \
                         (violation {})",
                        cold_problem.max_violation(&w.values)
                    );
                    solution = w;
                }
                (Err(we), Err(ce)) => {
                    // Defensive: every generated row is satisfied at x = 0,
                    // so this should never fire — but if it does, both paths
                    // must at least agree on the verdict.
                    assert_eq!(we, ce, "seed {seed} round {round}: verdicts differ");
                    continue 'seeds;
                }
                (w, c) => panic!(
                    "seed {seed} round {round}: warm {w:?} disagrees with cold {c:?} on solvability"
                ),
            }
        }
    }
}

#[test]
fn warm_and_cold_agree_after_deletions() {
    for seed in 10u64..=15 {
        let mut state = 0xD1B54A32D192ED03u64.wrapping_mul(seed);
        let base = random_base(6, 4, &mut state);
        let mut warm = SimplexState::new(&base, SimplexOptions::default()).unwrap();
        let mut solution = warm.solve().unwrap();
        let mut appended = Vec::new();
        for _ in 0..6 {
            let (terms, op, rhs) = random_extra_row(&base, &solution.values, &mut state);
            appended.push(warm.add_row(&terms, op, rhs).unwrap());
            solution = match warm.resolve() {
                Ok(s) => s,
                // Defensive: the generated rows are all satisfiable at
                // x = 0, so infeasibility should never occur here.
                Err(e) => panic!("seed {seed}: unexpected {e}"),
            };
        }
        // Delete every other appended row (a mix of binding and non-binding:
        // exercises both the in-place removal and the refactorization path).
        let deleted: Vec<_> = appended.iter().copied().step_by(2).collect();
        warm.delete_rows(&deleted).unwrap();
        let cold_problem = warm.to_problem();
        let w = warm.resolve().unwrap();
        let c = cold_problem.solve().unwrap();
        assert_rel_close(
            w.objective,
            c.objective,
            1e-9,
            &format!("seed {seed} after delete"),
        );
        assert!(cold_problem.max_violation(&w.values) < 1e-6);
        // Delete the rest: back to the base optimum.
        warm.delete_rows(&appended).unwrap();
        let w = warm.resolve().unwrap();
        let c = base.solve().unwrap();
        assert_rel_close(
            w.objective,
            c.objective,
            1e-9,
            &format!("seed {seed} full delete"),
        );
    }
}

#[test]
fn infeasible_append_is_detected_by_both_paths() {
    let mut state = 0xABCDEFu64;
    let base = random_base(5, 3, &mut state);
    let mut warm = SimplexState::new(&base, SimplexOptions::default()).unwrap();
    warm.solve().unwrap();
    // x_0 ≤ −1 contradicts non-negativity outright.
    warm.add_row(
        &[(broadcast_trees::lp::VarId(0), 1.0)],
        ConstraintOp::Le,
        -1.0,
    )
    .unwrap();
    assert_eq!(warm.resolve().unwrap_err(), LpError::Infeasible);
    assert_eq!(warm.to_problem().solve().unwrap_err(), LpError::Infeasible);
}

/// Replays the exact row sequence a cut-generation run produces — cut rows
/// appended in rounds, purged rows deleted — against both paths, on real
/// platform instances of all three families.
#[test]
fn cut_generation_matches_cold_on_all_families() {
    let slice = 1.0e6;
    let mut platforms: Vec<(&str, Platform)> = Vec::new();
    let mut rng = StdRng::seed_from_u64(2024);
    platforms.push((
        "random-14",
        random_platform(&RandomPlatformConfig::paper(14, 0.15), &mut rng),
    ));
    let mut rng = StdRng::seed_from_u64(2025);
    platforms.push((
        "tiers-20",
        tiers_platform(&TiersConfig::paper(20, 0.10), &mut rng),
    ));
    let mut rng = StdRng::seed_from_u64(2026);
    platforms.push((
        "gaussian-20",
        gaussian_platform(&GaussianPlatformConfig::paper(20), &mut rng),
    ));
    for (label, platform) in &platforms {
        let warm = cut_gen::solve_with(
            platform,
            NodeId(0),
            slice,
            &CutGenOptions {
                warm_start: true,
                ..CutGenOptions::default()
            },
        )
        .unwrap();
        let cold = cut_gen::solve_with(
            platform,
            NodeId(0),
            slice,
            &CutGenOptions {
                warm_start: false,
                ..CutGenOptions::default()
            },
        )
        .unwrap();
        // Both terminate via the same separation certificate, so the values
        // agree to the separation tolerance (they may sit on different
        // degenerate vertices, hence not bit-identical in general).
        assert_rel_close(
            warm.optimal.throughput,
            cold.optimal.throughput,
            1e-6,
            &format!("{label} throughput"),
        );
        // The warm loads must support the claimed throughput per destination
        // (primal feasibility of the full cut LP).
        for w in platform.nodes().filter(|&w| w != NodeId(0)) {
            let flow =
                broadcast_trees::net::maxflow::max_flow(platform.graph(), NodeId(0), w, |e, _| {
                    warm.optimal.edge_load[e.index()]
                });
            assert!(
                flow.value >= warm.optimal.throughput * (1.0 - 1e-5),
                "{label}: destination {w} flow {} < TP {}",
                flow.value,
                warm.optimal.throughput
            );
        }
        assert!(
            warm.optimal.simplex_iterations < cold.optimal.simplex_iterations,
            "{label}: warm start did not reduce pivots \
             (warm {}, cold {})",
            warm.optimal.simplex_iterations,
            cold.optimal.simplex_iterations
        );
    }
}

/// The acceptance criterion of the warm-start work: on the 65-node Tiers
/// sweep point, total simplex pivots per cut-generation run drop ≥ 2×.
#[test]
fn warm_start_halves_simplex_iterations_on_tiers_65() {
    let mut rng = StdRng::seed_from_u64(65);
    let platform = tiers_platform(&TiersConfig::paper(65, 0.06), &mut rng);
    let warm = cut_gen::solve_with(
        &platform,
        NodeId(0),
        1.0e6,
        &CutGenOptions {
            warm_start: true,
            ..CutGenOptions::default()
        },
    )
    .unwrap();
    let cold = cut_gen::solve_with(
        &platform,
        NodeId(0),
        1.0e6,
        &CutGenOptions {
            warm_start: false,
            ..CutGenOptions::default()
        },
    )
    .unwrap();
    assert_rel_close(
        warm.optimal.throughput,
        cold.optimal.throughput,
        1e-6,
        "tiers-65 throughput",
    );
    eprintln!(
        "tiers-65: warm {} pivots / {} rounds, cold {} pivots / {} rounds",
        warm.optimal.simplex_iterations,
        warm.optimal.iterations,
        cold.optimal.simplex_iterations,
        cold.optimal.iterations
    );
    assert!(
        2 * warm.optimal.simplex_iterations <= cold.optimal.simplex_iterations,
        "expected ≥ 2x pivot drop on tiers-65: warm {} vs cold {}",
        warm.optimal.simplex_iterations,
        cold.optimal.simplex_iterations
    );
}

/// Purging under warm start deletes live rows from the basis; the optimum
/// must match a purge-free run exactly (same tolerance as the cold analogue
/// in `cut_gen`'s unit tests).
#[test]
fn warm_purging_preserves_the_optimum() {
    let mut rng = StdRng::seed_from_u64(21);
    let platform = random_platform(&RandomPlatformConfig::paper(20, 0.12), &mut rng);
    let purged = cut_gen::solve_with(
        &platform,
        NodeId(0),
        1.0e6,
        &CutGenOptions {
            purge_after: Some(1), // aggressive: maximise deletions
            warm_start: true,
            ..CutGenOptions::default()
        },
    )
    .unwrap();
    let kept = cut_gen::solve_with(
        &platform,
        NodeId(0),
        1.0e6,
        &CutGenOptions {
            purge_after: None,
            warm_start: true,
            ..CutGenOptions::default()
        },
    )
    .unwrap();
    assert!(purged.optimal.purged_cuts > 0, "purging never triggered");
    assert_rel_close(
        purged.optimal.throughput,
        kept.optimal.throughput,
        1e-6,
        "purged vs kept",
    );
}
