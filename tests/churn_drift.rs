//! Differential churn-test harness for dynamic platforms.
//!
//! Every test walks a deterministic **node-churn** drift trace — processors
//! join (with freshly attached links) and leave (with their incident links)
//! on top of the usual multiplicative cost drift — and pits the two solver
//! pipelines against each other at **every step**:
//!
//! * **warm** — one [`CutGenSession`] survives the node-set change:
//!   `solve_step_churn` remaps the cut pool through the step's
//!   [`ChurnRemap`], deletes the LP columns of dead edges, appends columns
//!   for new ones, reconciles the one-port rows, and re-solves from the
//!   repaired basis; `resynthesize_schedule_churn` grafts the joiners onto
//!   the kept trees and prunes the leavers;
//! * **cold** — the step's platform snapshot is solved from scratch
//!   (`warm_start: false`, empty cut pool) and a fresh schedule is
//!   synthesized.
//!
//! The contract: identical throughput at 1e-6 relative at every step —
//! including steps where a node joins *and* another leaves — with a valid
//! (repaired) schedule each step that the simulator replays at its stated
//! throughput, plus the headline perf assert: on a 40-node Tiers churn
//! trace the warm re-solves use **≥ 5× fewer simplex pivots per step** than
//! the cold baseline.

use broadcast_trees::core::optimal::cut_gen;
use broadcast_trees::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SLICE: f64 = 1.0e6;

fn assert_rel_close(a: f64, b: f64, tol: f64, what: &str) {
    assert!(
        (a - b).abs() <= tol * a.abs().max(b.abs()).max(1e-12),
        "{what}: warm {a} vs cold {b}"
    );
}

/// Cold reference for one snapshot: a from-scratch cut-generation solve.
fn cold_solve(platform: &Platform, source: NodeId) -> CutGenResult {
    cut_gen::solve_with(
        platform,
        source,
        SLICE,
        &CutGenOptions {
            warm_start: false,
            ..CutGenOptions::default()
        },
    )
    .expect("cold step solvable")
}

/// Counts the trace's join and leave events.
fn churn_events(trace: &DriftTrace) -> (usize, usize) {
    let mut joins = 0usize;
    let mut leaves = 0usize;
    for step in 0..trace.len() {
        for event in &trace.step(step).events {
            match event {
                DriftEvent::NodeJoin(_) => joins += 1,
                DriftEvent::NodeLeave(_) => leaves += 1,
                _ => {}
            }
        }
    }
    (joins, leaves)
}

/// Walks `trace` with the warm churn pipeline, checking warm ≡ cold and
/// schedule validity at every step. Returns `(warm_pivots, cold_pivots)`
/// summed over the churn steps (step 0 is a cold start for both sides and
/// excluded).
fn churn_walk(label: &str, trace: &DriftTrace, batch: usize) -> (usize, usize) {
    let config = SynthesisConfig::with_batch(batch);
    let snap0 = trace.platform_at(0);
    let mut session =
        CutGenSession::new(&snap0, trace.source_at(0), SLICE, CutGenOptions::default())
            .expect("step-0 platform solvable");
    let mut previous: Option<PeriodicSchedule> = None;
    let mut warm_pivots = 0usize;
    let mut cold_pivots = 0usize;
    for step in 0..trace.len() {
        let snapshot = trace.platform_at(step);
        let source = trace.source_at(step);
        let warm = if step == 0 {
            session.solve_step(&snapshot).expect("warm step solvable")
        } else {
            let remap = trace.remap(step - 1, step);
            session
                .solve_step_churn(&snapshot, &remap)
                .expect("warm churn step solvable")
        };
        let cold = cold_solve(&snapshot, source);
        assert_rel_close(
            warm.optimal.throughput,
            cold.optimal.throughput,
            1e-6,
            &format!("{label} step {step} throughput"),
        );
        assert_eq!(
            warm.optimal.edge_load.len(),
            snapshot.edge_count(),
            "{label} step {step}: edge loads live in a stale id space"
        );
        // The warm loads must support the claimed throughput per
        // destination (primal feasibility of the full cut LP on the
        // *churned* snapshot).
        for w in snapshot.nodes().filter(|&w| w != source) {
            let flow =
                broadcast_trees::net::maxflow::max_flow(snapshot.graph(), source, w, |e, _| {
                    warm.optimal.edge_load[e.index()]
                });
            assert!(
                flow.value >= warm.optimal.throughput * (1.0 - 1e-5),
                "{label} step {step}: destination {w} flow {} < TP {}",
                flow.value,
                warm.optimal.throughput
            );
        }
        // Warm side: repair the previous period across the node-set change.
        // Cold side: synthesize fresh. Both must validate on the snapshot.
        let (schedule, report) = match &previous {
            None => (
                synthesize_schedule(&snapshot, source, &warm.optimal, SLICE, &config)
                    .expect("synthesis succeeds"),
                RepairReport::default(),
            ),
            Some(prev) => {
                let remap = trace.remap(step - 1, step);
                resynthesize_schedule_churn(
                    &snapshot,
                    source,
                    &warm.optimal,
                    SLICE,
                    &config,
                    prev,
                    &remap,
                )
                .expect("churn repair succeeds")
            }
        };
        schedule
            .validate(&snapshot)
            .unwrap_or_else(|e| panic!("{label} step {step}: repaired schedule invalid: {e}"));
        assert_eq!(
            schedule.slices_per_period(),
            batch,
            "{label} step {step}: repair changed the batch size"
        );
        if step > 0 && !report.full_rebuild {
            assert_eq!(
                report.kept_trees + report.rebuilt_trees,
                batch,
                "{label} step {step}: repair lost trees ({report:?})"
            );
        }
        let cold_schedule = synthesize_schedule(&snapshot, source, &cold.optimal, SLICE, &config)
            .expect("cold synthesis succeeds");
        cold_schedule
            .validate(&snapshot)
            .unwrap_or_else(|e| panic!("{label} step {step}: cold schedule invalid: {e}"));
        if step > 0 {
            warm_pivots += warm.optimal.simplex_iterations;
            cold_pivots += cold.optimal.simplex_iterations;
        }
        previous = Some(schedule);
    }
    (warm_pivots, cold_pivots)
}

/// Warm ≡ cold at every step of a churn trace, on all three platform
/// families, with joins and leaves actually exercised.
#[test]
fn warm_churn_resolve_matches_cold_on_all_families() {
    let mut platforms: Vec<(&str, Platform)> = Vec::new();
    let mut rng = StdRng::seed_from_u64(7024);
    platforms.push((
        "random-16",
        random_platform(&RandomPlatformConfig::paper(16, 0.12), &mut rng),
    ));
    let mut rng = StdRng::seed_from_u64(7025);
    platforms.push((
        "tiers-20",
        tiers_platform(&TiersConfig::paper(20, 0.10), &mut rng),
    ));
    let mut rng = StdRng::seed_from_u64(7026);
    platforms.push((
        "gaussian-16",
        gaussian_platform(&GaussianPlatformConfig::paper(16), &mut rng),
    ));
    for (i, (label, platform)) in platforms.iter().enumerate() {
        let trace = DriftTrace::generate(
            platform,
            NodeId(0),
            &DriftConfig::with_churn(8, 0xC4A1 + i as u64),
        );
        let (joins, leaves) = churn_events(&trace);
        assert!(joins > 0, "{label}: the churn trace produced no joins");
        assert!(leaves > 0, "{label}: the churn trace produced no leaves");
        churn_walk(label, &trace, 8);
    }
}

/// Steps where a join and a leave land together are the adversarial case
/// (the LP gains and loses columns in one reconciliation): force such a
/// step to exist and run the full differential walk over the trace.
#[test]
fn simultaneous_join_and_leave_steps_keep_warm_equal_to_cold() {
    let mut found = None;
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(7100 + seed);
        let platform = random_platform(&RandomPlatformConfig::paper(14, 0.15), &mut rng);
        let trace = DriftTrace::generate(
            &platform,
            NodeId(0),
            &DriftConfig::with_churn(8, 9000 + seed),
        );
        let both = (0..trace.len()).any(|s| {
            let events = &trace.step(s).events;
            events.iter().any(|e| matches!(e, DriftEvent::NodeJoin(_)))
                && events.iter().any(|e| matches!(e, DriftEvent::NodeLeave(_)))
        });
        if both {
            found = Some(trace);
            break;
        }
    }
    let trace = found.expect("no seed produced a simultaneous join+leave step");
    churn_walk("join+leave-14", &trace, 8);
}

/// The headline perf assert of the node-churn work: on a 40-node Tiers
/// churn trace, the warm cross-step re-solves (cut pool remapped, columns
/// added/deleted in place) use at least 5× fewer simplex pivots than
/// solving every step cold (measured over the churn steps; step 0 is a
/// cold start on both sides).
#[test]
fn warm_churn_cuts_pivots_5x_on_a_tiers_40_trace() {
    // Seed re-probed after the join-cost model moved to family-faithful
    // sampling (which shifts the whole churn RNG stream): 4149 gives 5
    // joins + 3 leaves and a measured ~23x warm/cold pivot ratio in
    // release — nearby seeds range 6-60x, so 5x is a regression gate, not
    // a lucky draw.
    let mut rng = StdRng::seed_from_u64(40);
    let platform = tiers_platform(&TiersConfig::paper(40, 0.10), &mut rng);
    let trace = DriftTrace::generate(&platform, NodeId(0), &DriftConfig::with_churn(6, 4149));
    let (joins, leaves) = churn_events(&trace);
    assert!(
        joins > 0 && leaves > 0,
        "tiers-40 churn trace must exercise both joins ({joins}) and leaves ({leaves})"
    );
    let (warm, cold) = churn_walk("tiers-40", &trace, 12);
    eprintln!("tiers-40 churn steps: warm {warm} pivots vs cold {cold} pivots");
    assert!(
        5 * warm <= cold,
        "expected a ≥ 5x pivot drop across the churn steps: warm {warm} vs cold {cold}"
    );
}

/// The churn-repaired schedule replayed by the simulator achieves the
/// schedule's own throughput at every step
/// (LP → remap → graft/prune → timetable → execution).
#[test]
fn churn_repaired_schedules_replay_at_their_stated_throughput() {
    let mut rng = StdRng::seed_from_u64(7028);
    let platform = random_platform(&RandomPlatformConfig::paper(12, 0.15), &mut rng);
    let trace = DriftTrace::generate(&platform, NodeId(0), &DriftConfig::with_churn(6, 777));
    let batch = 8usize;
    let config = SynthesisConfig::with_batch(batch);
    let spec = MessageSpec::new(5.0 * batch as f64 * SLICE, SLICE);
    let snap0 = trace.platform_at(0);
    let mut session =
        CutGenSession::new(&snap0, trace.source_at(0), SLICE, CutGenOptions::default())
            .expect("step-0 platform solvable");
    let mut previous: Option<PeriodicSchedule> = None;
    for step in 0..trace.len() {
        let snapshot = trace.platform_at(step);
        let source = trace.source_at(step);
        let optimal = if step == 0 {
            session.solve_step(&snapshot).expect("solvable").optimal
        } else {
            session
                .solve_step_churn(&snapshot, &trace.remap(step - 1, step))
                .expect("solvable")
                .optimal
        };
        let schedule = match &previous {
            None => synthesize_schedule(&snapshot, source, &optimal, SLICE, &config)
                .expect("synthesis succeeds"),
            Some(prev) => {
                resynthesize_schedule_churn(
                    &snapshot,
                    source,
                    &optimal,
                    SLICE,
                    &config,
                    prev,
                    &trace.remap(step - 1, step),
                )
                .expect("churn repair succeeds")
                .0
            }
        };
        let report = simulate_schedule(&snapshot, &schedule, &spec);
        let simulated = report.batch_throughput(batch);
        assert_rel_close(
            simulated,
            schedule.throughput(),
            1e-6,
            &format!("step {step} simulated throughput"),
        );
        assert!(
            schedule.efficiency() <= 1.0 + 1e-6,
            "step {step}: schedule beats the LP bound"
        );
        previous = Some(schedule);
    }
}

/// Regression: a heavy leave can kill every cut in the pool (any cut whose
/// source side contained the departed node dies) on a step with no joiner
/// to seed a replacement. TP is only bounded through cut rows, so the warm
/// master used to come back `Lp(Unbounded)` — first seen on this tiers-40
/// trace (platform seed 2206, churn seed 2006, join 0.20 / leave 0.10,
/// step 8), found by the seed-2004 drift ablation. The session must
/// re-seed the trivial per-destination cuts and stay warm ≡ cold.
#[test]
fn churn_step_that_kills_every_cut_reseeds_and_stays_bounded() {
    let mut rng = StdRng::seed_from_u64(2206);
    let platform = tiers_platform(&TiersConfig::paper(40, 0.10), &mut rng);
    // Same bounded probe loop as the drift ablation: the first seed in the
    // window whose trace has at least one join and one leave.
    let trace = (0..64u64)
        .map(|probe| {
            DriftTrace::generate(
                &platform,
                NodeId(0),
                &DriftConfig {
                    join_rate: 0.20,
                    leave_rate: 0.10,
                    ..DriftConfig::with_failures(8, 2006 + 1000 * probe)
                },
            )
        })
        .find(|t| {
            let (joins, leaves) = churn_events(t);
            joins > 0 && leaves > 0
        })
        .expect("a churn trace with both event kinds exists in the window");
    churn_walk("cut-killing leave", &trace, 16);
}
