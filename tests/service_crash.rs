//! Differential crash harness for the solver service (`bcast-service`).
//!
//! Every test drives the same deterministic command script twice:
//!
//! * **baseline** — one service instance, never interrupted;
//! * **crashed** — a fresh instance armed with one seeded [`KillPoint`],
//!   killed mid-script, dropped without cleanup, re-opened from its
//!   on-disk artifacts, and driven through the rest of the script.
//!
//! The contract is *bit-identity*: the recovered run's per-step log
//! (throughput, pivot counts, repair operations, schedule efficiency,
//! simulated throughput — compared on the raw `f64` bits), its command
//! outcomes, and its digest-cache contents must equal the baseline's
//! exactly. The kill matrix covers **every** command boundary of the
//! script × all five kill kinds × the three platform families, on churn
//! traces seed-probed to contain at least one join *and* one leave.
//!
//! A second group injects *artifact corruption* (bit flips and
//! truncations in `snapshot.bin` and `wal.bin`) and asserts recovery
//! degrades gracefully — a full WAL replay or a shorter-but-valid command
//! prefix — with the session still answering queries, and never a panic.

use bcast_service::{
    flip_byte, session::generate_trace, truncate_file, Command, FaultPlan, KillPoint, Outcome,
    PlatformFamily, Service, ServiceError, SessionSpec, StepStats,
};
use broadcast_trees::prelude::DriftEvent;
use std::path::PathBuf;

const SLICE: f64 = 1.0e6;
const STEPS: usize = 3;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bcast-svc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A churn spec for `family` whose trace contains at least one join and
/// one leave (seed-probed deterministically, like the drift binary).
fn churny_spec(family: PlatformFamily, platform_seed: u64, base_drift_seed: u64) -> SessionSpec {
    for probe in 0..64u64 {
        let spec = SessionSpec {
            family,
            platform_seed,
            slice_size: SLICE,
            batch: 16,
            drift_steps: STEPS,
            drift_seed: base_drift_seed + 1000 * probe,
            churn: true,
        };
        let trace = generate_trace(&spec);
        let mut joins = 0usize;
        let mut leaves = 0usize;
        for step in 0..trace.len() {
            for event in &trace.step(step).events {
                match event {
                    DriftEvent::NodeJoin(_) => joins += 1,
                    DriftEvent::NodeLeave(_) => leaves += 1,
                    _ => {}
                }
            }
        }
        if joins > 0 && leaves > 0 {
            return spec;
        }
    }
    panic!("no churny seed found for {family:?} in 64 probes");
}

fn fixtures() -> Vec<(&'static str, SessionSpec)> {
    vec![
        (
            "random-12",
            churny_spec(
                PlatformFamily::Random {
                    nodes: 12,
                    density: 0.12,
                },
                7024,
                0xC4A1,
            ),
        ),
        (
            "tiers-12",
            churny_spec(
                PlatformFamily::Tiers {
                    nodes: 12,
                    density: 0.10,
                },
                7025,
                0xC4A2,
            ),
        ),
        (
            "gaussian-12",
            churny_spec(PlatformFamily::Gaussian { nodes: 12 }, 7026, 0xC4A3),
        ),
    ]
}

/// The deterministic command script of one session: create, walk the
/// whole trace (drift or churn per the trace's remaps), query after every
/// step, snapshot every other step, then a warm resolve and a final
/// query. The command kind per step is decided from the regenerated
/// trace, exactly as a client following the rejection contract would.
fn script(name: &str, spec: &SessionSpec) -> Vec<Command> {
    let trace = generate_trace(spec);
    let mut commands = vec![Command::CreateSession {
        name: name.into(),
        spec: *spec,
    }];
    for step in 0..trace.len() {
        let churn = step > 0 && !trace.remap(step - 1, step).is_identity();
        commands.push(if churn {
            Command::NodeChurn {
                session: name.into(),
            }
        } else {
            Command::DriftStep {
                session: name.into(),
            }
        });
        commands.push(Command::QuerySchedule {
            session: name.into(),
        });
        if (step + 1) % 2 == 0 {
            commands.push(Command::Snapshot);
        }
    }
    commands.push(Command::Resolve {
        session: name.into(),
    });
    commands.push(Command::QuerySchedule {
        session: name.into(),
    });
    commands
}

/// Everything the harness compares between two runs of the same script.
/// `outcomes[i]` is `None` only for the (at most one) command that was
/// durable but unacknowledged at the kill: replay re-derived its effect —
/// which the log/state comparison covers — but its `Outcome` value was
/// returned to nobody.
#[derive(Debug, PartialEq)]
struct RunTrace {
    outcomes: Vec<Option<Outcome>>,
    log: Vec<StepStats>,
    steps_done: usize,
    digest_cache: Vec<(u64, usize)>,
}

fn bits_of(log: &[StepStats]) -> Vec<(usize, u64, usize, usize, u64, u64)> {
    log.iter()
        .map(|s| {
            (
                s.step,
                s.tp.to_bits(),
                s.pivots,
                s.repair_ops,
                s.efficiency.to_bits(),
                s.sim_tp.to_bits(),
            )
        })
        .collect()
}

fn run_trace_of(service: &Service, name: &str, outcomes: Vec<Option<Outcome>>) -> RunTrace {
    let session = service.session(name).expect("session exists");
    RunTrace {
        outcomes,
        log: session.log().to_vec(),
        steps_done: session.steps_done(),
        digest_cache: service.digest_cache_summary(),
    }
}

/// The never-crashed reference run.
fn baseline(tag: &str, name: &str, commands: &[Command]) -> RunTrace {
    let dir = tmp_dir(tag);
    let mut service = Service::open(&dir, FaultPlan::none()).expect("open");
    let outcomes: Vec<Option<Outcome>> = commands
        .iter()
        .map(|c| Some(service.apply(c).expect("baseline apply")))
        .collect();
    let run = run_trace_of(&service, name, outcomes);
    let _ = std::fs::remove_dir_all(&dir);
    run
}

/// One crashed run: drive until the armed kill fires, drop the instance,
/// re-open, and finish the script from the first non-durable command
/// (`next_seq - 1`, which is exactly what a client that never got an
/// acknowledgement for its in-flight command would re-submit).
fn crashed_run(tag: &str, name: &str, commands: &[Command], kill: KillPoint) -> RunTrace {
    let dir = tmp_dir(tag);
    let mut outcomes: Vec<Option<Outcome>> = Vec::with_capacity(commands.len());
    {
        let mut service = Service::open(&dir, FaultPlan::kill_at(kill)).expect("open armed");
        let mut killed = false;
        for command in commands {
            match service.apply(command) {
                Ok(outcome) => outcomes.push(Some(outcome)),
                Err(ServiceError::Killed(point)) => {
                    assert_eq!(point, kill, "the armed kill fired");
                    killed = true;
                    break;
                }
                Err(e) => panic!("unexpected error before the kill: {e}"),
            }
        }
        assert!(killed, "kill point {kill:?} never fired");
        // Dropped without any cleanup: exactly what SIGKILL leaves.
    }
    let mut service = Service::open(&dir, FaultPlan::none()).expect("recovery never fails");
    let resume_at = (service.next_seq() - 1) as usize;
    assert!(
        resume_at >= outcomes.len(),
        "recovery lost an acknowledged command: resume at {resume_at}, acknowledged {}",
        outcomes.len()
    );
    // Between the acknowledged prefix and the re-submitted tail sits at
    // most one durable-but-unacknowledged command: the WAL replay already
    // applied its effect (which the state comparison verifies), but its
    // outcome value was never returned to anyone — recorded as `None`.
    for _ in outcomes.len()..resume_at {
        outcomes.push(None);
    }
    for command in &commands[resume_at..] {
        outcomes.push(Some(service.apply(command).expect("post-recovery apply")));
    }
    let run = run_trace_of(&service, name, outcomes);
    let _ = std::fs::remove_dir_all(&dir);
    run
}

/// The full kill matrix: every command boundary × all five kill kinds ×
/// all three platform families, each recovered run bit-identical to the
/// baseline.
#[test]
fn every_kill_point_recovers_bit_identically() {
    for (name, spec) in fixtures() {
        let commands = script(name, &spec);
        let reference = baseline(&format!("base-{name}"), name, &commands);
        assert_eq!(reference.steps_done, STEPS + 1, "{name}: full trace walked");
        for seq in 1..=commands.len() as u64 {
            for kill in KillPoint::all_at(seq) {
                // Mid-snapshot-write kills only fire on Snapshot commands;
                // arming them elsewhere would never kill. Skip those.
                if matches!(kill, KillPoint::MidSnapshotWrite(_))
                    && !matches!(commands[(seq - 1) as usize], Command::Snapshot)
                {
                    continue;
                }
                let run = crashed_run(
                    &format!("kill-{name}-{seq}-{kill:?}"),
                    name,
                    &commands,
                    kill,
                );
                assert_eq!(
                    bits_of(&run.log),
                    bits_of(&reference.log),
                    "{name}: per-step log after {kill:?}"
                );
                assert_eq!(run.log, reference.log, "{name}: log after {kill:?}");
                assert_eq!(run.steps_done, reference.steps_done, "{name}: {kill:?}");
                assert_eq!(
                    run.digest_cache, reference.digest_cache,
                    "{name}: digest cache after {kill:?}"
                );
                assert_eq!(run.outcomes.len(), reference.outcomes.len());
                for (i, (got, want)) in run.outcomes.iter().zip(&reference.outcomes).enumerate() {
                    if got.is_some() {
                        assert_eq!(got, want, "{name}: outcome {i} after {kill:?}");
                    }
                }
            }
        }
    }
}

/// Corrupt snapshot files — bit flips and truncations at many offsets —
/// must degrade recovery to the authoritative WAL replay: same state as
/// the baseline, queries still answered, never a panic.
#[test]
fn corrupt_snapshot_degrades_to_wal_replay() {
    let (name, spec) = ("tiers-12", fixtures().remove(1).1);
    let commands = script(name, &spec);
    let reference = baseline("corrupt-base", name, &commands);

    let dir = tmp_dir("corrupt-snap");
    {
        let mut service = Service::open(&dir, FaultPlan::none()).expect("open");
        for command in &commands {
            service.apply(command).expect("apply");
        }
    }
    let snap = dir.join("snapshot.bin");
    let snap_len = std::fs::metadata(&snap).expect("snapshot written").len();

    // Flip a byte at several offsets spread over the file (header, seq,
    // cache, session payload, checksum), truncate to several lengths.
    let offsets = [
        0,
        5,
        9,
        snap_len / 3,
        snap_len / 2,
        snap_len - 9,
        snap_len - 1,
    ];
    let pristine = std::fs::read(&snap).expect("read snapshot");
    for offset in offsets {
        std::fs::write(&snap, &pristine).expect("restore pristine snapshot");
        flip_byte(&snap, offset).expect("flip");
        let mut service =
            Service::open(&dir, FaultPlan::none()).expect("corrupt snapshot not fatal");
        assert!(
            service.recovery().snapshot_rejected,
            "offset {offset}: corruption detected"
        );
        // Every WAL record replays (the trailing queries of earlier loop
        // iterations included) — nothing but the log carried recovery.
        assert!(service.recovery().replayed >= commands.len(), "full replay");
        let run = run_trace_of(&service, name, Vec::new());
        assert_eq!(
            bits_of(&run.log),
            bits_of(&reference.log),
            "offset {offset}"
        );
        // The session still answers queries.
        let outcome = service
            .apply(&Command::QuerySchedule {
                session: name.into(),
            })
            .expect("query after degrade");
        assert!(matches!(outcome, Outcome::Schedule(Some(_))));
    }
    for cut in [0u64, 3, 9, snap_len / 2, snap_len - 1] {
        std::fs::write(&snap, &pristine).expect("restore pristine snapshot");
        truncate_file(&snap, cut).expect("truncate");
        let service = Service::open(&dir, FaultPlan::none()).expect("torn snapshot not fatal");
        assert!(service.recovery().snapshot_rejected, "cut {cut}: detected");
        let run = run_trace_of(&service, name, Vec::new());
        assert_eq!(bits_of(&run.log), bits_of(&reference.log), "cut {cut}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn or bit-flipped WAL tail loses at most the damaged suffix: the
/// valid prefix recovers cleanly and re-submitting the lost commands
/// reconverges with the baseline.
#[test]
fn damaged_wal_tail_keeps_the_valid_prefix() {
    let (name, spec) = ("tiers-12", fixtures().remove(1).1);
    let commands = script(name, &spec);
    let reference = baseline("wal-base", name, &commands);

    let dir = tmp_dir("wal-damage");
    {
        let mut service = Service::open(&dir, FaultPlan::none()).expect("open");
        for command in &commands {
            service.apply(command).expect("apply");
        }
    }
    // Remove the snapshot so the WAL alone carries recovery, then chop
    // the log at arbitrary byte lengths.
    std::fs::remove_file(dir.join("snapshot.bin")).expect("drop snapshot");
    let wal = dir.join("wal.bin");
    let pristine = std::fs::read(&wal).expect("read wal");
    for cut in [
        8u64,
        21,
        pristine.len() as u64 / 2,
        pristine.len() as u64 - 5,
    ] {
        std::fs::write(&wal, &pristine).expect("restore pristine wal");
        truncate_file(&wal, cut).expect("truncate");
        let mut service = Service::open(&dir, FaultPlan::none()).expect("torn WAL not fatal");
        let resume_at = (service.next_seq() - 1) as usize;
        assert!(resume_at <= commands.len(), "cut {cut}");
        for command in &commands[resume_at..] {
            service.apply(command).expect("re-submit");
        }
        let run = run_trace_of(&service, name, Vec::new());
        assert_eq!(bits_of(&run.log), bits_of(&reference.log), "cut {cut}");
    }
    // A flipped byte inside the final record invalidates only that record.
    std::fs::write(&wal, &pristine).expect("restore pristine wal");
    flip_byte(&wal, pristine.len() as u64 - 3).expect("flip");
    let mut service = Service::open(&dir, FaultPlan::none()).expect("flipped WAL not fatal");
    let resume_at = (service.next_seq() - 1) as usize;
    assert_eq!(resume_at, commands.len() - 1, "exactly one record lost");
    for command in &commands[resume_at..] {
        service.apply(command).expect("re-submit");
    }
    let run = run_trace_of(&service, name, Vec::new());
    assert_eq!(bits_of(&run.log), bits_of(&reference.log));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two sessions on byte-identical platforms share a digest-cache entry:
/// the second `CreateSession` reports a hit, seeds its cut pool from the
/// first session's binding cuts, and still reaches the identical
/// throughput on its first step.
#[test]
fn digest_cache_seeds_identical_topologies() {
    let (_, spec) = fixtures().remove(1);
    let dir = tmp_dir("digest");
    let mut service = Service::open(&dir, FaultPlan::none()).expect("open");
    let first = service
        .apply(&Command::CreateSession {
            name: "a".into(),
            spec,
        })
        .expect("create a");
    assert_eq!(first, Outcome::Created { digest_hit: false });
    let Outcome::Stepped { stats: step_a } = service
        .apply(&Command::DriftStep {
            session: "a".into(),
        })
        .expect("step a")
    else {
        panic!("step a not stepped");
    };
    assert_eq!(service.digest_cache_summary().len(), 1, "cache filled");

    let second = service
        .apply(&Command::CreateSession {
            name: "b".into(),
            spec,
        })
        .expect("create b");
    assert_eq!(second, Outcome::Created { digest_hit: true }, "cache hit");
    let Outcome::Stepped { stats: step_b } = service
        .apply(&Command::DriftStep {
            session: "b".into(),
        })
        .expect("step b")
    else {
        panic!("step b not stepped");
    };
    // Same platform, same optimum — but the seeded session walks a
    // different cut/pivot path, so compare values, not bits.
    assert!(
        (step_a.tp - step_b.tp).abs() <= 1e-9 * step_a.tp.abs().max(1.0),
        "identical platforms, identical optimum: {} vs {}",
        step_a.tp,
        step_b.tp
    );
    // A duplicate create is rejected deterministically, not an error.
    let dup = service
        .apply(&Command::CreateSession {
            name: "a".into(),
            spec,
        })
        .expect("duplicate create");
    assert!(matches!(dup, Outcome::Rejected { .. }));
    let _ = std::fs::remove_dir_all(&dir);
}
