//! Cross-crate integration tests: every heuristic, on every kind of
//! platform, must produce a valid spanning structure whose throughput never
//! exceeds the multiple-tree optimum.

use broadcast_trees::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SLICE: f64 = 1.0e6;

fn check_platform(platform: &Platform, source: NodeId) {
    let optimal = optimal_throughput(platform, source, SLICE, OptimalMethod::CutGeneration)
        .expect("optimal solvable");
    assert!(optimal.throughput > 0.0);
    for kind in HeuristicKind::ALL {
        let structure = build_structure_with_loads(
            platform,
            source,
            kind,
            CommModel::OnePort,
            SLICE,
            Some(&optimal),
        )
        .unwrap_or_else(|e| panic!("{kind:?} failed: {e}"));
        // Spanning invariant.
        assert_eq!(structure.source(), source);
        assert!(structure.edge_count() >= platform.node_count() - 1);
        if kind != HeuristicKind::Binomial {
            assert!(structure.is_tree(), "{kind:?} must return a tree");
            let arb = structure
                .as_arborescence(platform)
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(arb.root(), source);
        }
        // A single tree can never beat the multi-tree optimum (one-port).
        let tp = steady_state_throughput(platform, &structure, CommModel::OnePort, SLICE);
        assert!(
            tp <= optimal.throughput * (1.0 + 1e-6),
            "{kind:?}: throughput {tp} exceeds optimum {}",
            optimal.throughput
        );
        assert!(tp > 0.0);
    }
}

#[test]
fn random_platforms_all_heuristics() {
    let mut rng = StdRng::seed_from_u64(100);
    for &(nodes, density) in &[(6usize, 0.3), (12, 0.15), (20, 0.08), (30, 0.12)] {
        let platform = random_platform(&RandomPlatformConfig::paper(nodes, density), &mut rng);
        check_platform(&platform, NodeId(0));
    }
}

#[test]
fn tiers_platforms_all_heuristics() {
    let mut rng = StdRng::seed_from_u64(101);
    let platform = tiers_platform(&TiersConfig::paper_30(), &mut rng);
    check_platform(&platform, NodeId(0));
    // Also broadcast from a leaf of the hierarchy.
    let leaf = NodeId((platform.node_count() - 1) as u32);
    check_platform(&platform, leaf);
}

#[test]
fn different_sources_give_valid_trees() {
    let mut rng = StdRng::seed_from_u64(102);
    let platform = random_platform(&RandomPlatformConfig::paper(15, 0.15), &mut rng);
    for source in platform.nodes() {
        let tree = build_structure(
            &platform,
            source,
            HeuristicKind::GrowTree,
            CommModel::OnePort,
            SLICE,
        )
        .expect("grow tree succeeds");
        assert_eq!(tree.as_arborescence(&platform).unwrap().root(), source);
    }
}

#[test]
fn lp_heuristics_reuse_optimal_loads_consistently() {
    let mut rng = StdRng::seed_from_u64(103);
    let platform = random_platform(&RandomPlatformConfig::paper(14, 0.15), &mut rng);
    let source = NodeId(2);
    let optimal =
        optimal_throughput(&platform, source, SLICE, OptimalMethod::CutGeneration).unwrap();
    // Building with precomputed loads must equal building from scratch
    // (the LP solve is deterministic).
    for kind in [HeuristicKind::LpGrow, HeuristicKind::LpPrune] {
        let with_loads = build_structure_with_loads(
            &platform,
            source,
            kind,
            CommModel::OnePort,
            SLICE,
            Some(&optimal),
        )
        .unwrap();
        let from_scratch =
            build_structure(&platform, source, kind, CommModel::OnePort, SLICE).unwrap();
        assert_eq!(with_loads.edges(), from_scratch.edges());
    }
}

#[test]
fn direct_lp_and_cut_generation_agree_on_integration_scale() {
    let mut rng = StdRng::seed_from_u64(104);
    let platform = random_platform(&RandomPlatformConfig::paper(10, 0.2), &mut rng);
    let a = optimal_throughput(&platform, NodeId(0), SLICE, OptimalMethod::DirectLp).unwrap();
    let b = optimal_throughput(&platform, NodeId(0), SLICE, OptimalMethod::CutGeneration).unwrap();
    assert!(
        (a.throughput - b.throughput).abs() <= 1e-4 * a.throughput.abs().max(1.0),
        "direct {} vs cut-gen {}",
        a.throughput,
        b.throughput
    );
}

#[test]
fn evaluation_harness_matches_manual_computation() {
    let mut rng = StdRng::seed_from_u64(105);
    let platform = random_platform(&RandomPlatformConfig::paper(12, 0.15), &mut rng);
    let (optimal, rows) = evaluate_heuristics(
        &platform,
        NodeId(0),
        CommModel::OnePort,
        SLICE,
        &[HeuristicKind::GrowTree],
    )
    .unwrap();
    let tree = build_structure_with_loads(
        &platform,
        NodeId(0),
        HeuristicKind::GrowTree,
        CommModel::OnePort,
        SLICE,
        Some(&optimal),
    )
    .unwrap();
    let tp = steady_state_throughput(&platform, &tree, CommModel::OnePort, SLICE);
    assert!((rows[0].throughput - tp).abs() < 1e-9);
    assert!((rows[0].relative - tp / optimal.throughput).abs() < 1e-9);
}
