//! From LP loads to an executable schedule: synthesize the periodic
//! multi-tree schedule for a random platform, inspect its rounds, and
//! verify by simulation that it delivers (almost) the LP-optimal
//! throughput — ahead of every single-tree heuristic.
//!
//! ```text
//! cargo run --release --example schedule_broadcast
//! ```

use broadcast_trees::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let platform = random_platform(&RandomPlatformConfig::paper(20, 0.12), &mut rng);
    let source = NodeId(0);
    let slice = 1.0e6; // 1 MB slices

    // 1. The LP optimum and its per-edge loads.
    let optimal = optimal_throughput(&platform, source, slice, OptimalMethod::CutGeneration)
        .expect("platform is connected");
    println!(
        "platform: {} processors, {} links — LP optimal throughput {:.2} slices/s",
        platform.node_count(),
        platform.edge_count(),
        optimal.throughput
    );

    // 2. The best single-tree heuristic, for contrast.
    let mut best_tree_tp: f64 = 0.0;
    let mut best_kind = HeuristicKind::GrowTree;
    let mut candidates = Vec::new();
    for kind in HeuristicKind::ALL {
        if let Ok(tree) = build_structure_with_loads(
            &platform,
            source,
            kind,
            CommModel::OnePort,
            slice,
            Some(&optimal),
        ) {
            let tp = steady_state_throughput(&platform, &tree, CommModel::OnePort, slice);
            if tp > best_tree_tp {
                best_tree_tp = tp;
                best_kind = kind;
            }
            candidates.push(tree);
        }
    }
    println!(
        "best single tree: {} at {:.2} slices/s ({:.1}% of the LP bound)",
        best_kind.label(),
        best_tree_tp,
        100.0 * best_tree_tp / optimal.throughput
    );

    // 3. Synthesize the periodic schedule from the LP edge loads.
    let schedule = synthesize_schedule_with_tree_fallback(
        &platform,
        source,
        &optimal,
        slice,
        &SynthesisConfig::default(),
        &candidates,
    )
    .expect("synthesis succeeds");
    schedule.validate(&platform).expect("schedule is feasible");
    println!(
        "\nsynthesized schedule: {} slices per period of {:.4} s ({} rounds, pipeline depth {} periods)",
        schedule.slices_per_period(),
        schedule.period(),
        schedule.rounds().len(),
        schedule.max_lag()
    );
    println!(
        "rounding: guaranteed loss bound {:.1}%, {} capacity repairs",
        100.0 * schedule.rounding().loss_bound,
        schedule.rounding().repairs
    );
    let busiest = platform
        .nodes()
        .max_by(|&a, &b| {
            let (sa, _) = schedule.port_utilisation(a);
            let (sb, _) = schedule.port_utilisation(b);
            sa.partial_cmp(&sb).unwrap()
        })
        .unwrap();
    let (send_util, recv_util) = schedule.port_utilisation(busiest);
    println!(
        "busiest port: {busiest} sends {:.0}% / receives {:.0}% of every period",
        100.0 * send_util,
        100.0 * recv_util
    );

    // 4. Verify by simulation: replay the schedule for many periods.
    let batch = schedule.slices_per_period();
    let spec = MessageSpec::new(8.0 * batch as f64 * slice, slice);
    let report = simulate_schedule(&platform, &schedule, &spec);
    let simulated = report.batch_throughput(batch);
    println!(
        "\nsimulated: {:.2} slices/s — {:.1}% of the LP optimum, {:.2}x the best single tree",
        simulated,
        100.0 * simulated / optimal.throughput,
        simulated / best_tree_tp
    );
    assert!(simulated >= best_tree_tp * (1.0 - 1e-9));
    assert!(simulated >= 0.9 * optimal.throughput);
}
