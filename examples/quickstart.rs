//! Quickstart: build a broadcast tree on a random heterogeneous platform and
//! compare it to the optimal multiple-tree throughput.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use broadcast_trees::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A random 20-node platform with the paper's Table 2 parameters:
    //    density 0.12, link bandwidths ~ N(100 MB/s, 20 MB/s).
    let mut rng = StdRng::seed_from_u64(42);
    let platform = random_platform(&RandomPlatformConfig::paper(20, 0.12), &mut rng);
    let source = NodeId(0);
    let slice = 1.0e6; // 1 MB slices

    println!(
        "platform: {} processors, {} directed links, density {:.3}",
        platform.node_count(),
        platform.edge_count(),
        platform.density()
    );

    // 2. The optimal Multiple-Tree-Pipelined throughput (the absolute bound).
    let optimal = optimal_throughput(&platform, source, slice, OptimalMethod::CutGeneration)
        .expect("platform is connected");
    println!(
        "optimal MTP throughput: {:.2} slices/s ({:.1} MB/s delivered to every node)",
        optimal.throughput,
        optimal.bandwidth(slice) / 1.0e6
    );

    // 3. Every heuristic of the paper, from best to worst.
    println!(
        "\n{:<24} {:>12} {:>10} {:>6}",
        "heuristic", "slices/s", "relative", "tree?"
    );
    let mut rows = Vec::new();
    for kind in HeuristicKind::ALL {
        let structure = build_structure(&platform, source, kind, CommModel::OnePort, slice)
            .expect("heuristic succeeds");
        let tp = steady_state_throughput(&platform, &structure, CommModel::OnePort, slice);
        rows.push((kind, tp, structure.is_tree()));
    }
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (kind, tp, is_tree) in rows {
        println!(
            "{:<24} {:>12.2} {:>9.1}% {:>6}",
            kind.label(),
            tp,
            100.0 * tp / optimal.throughput,
            if is_tree { "yes" } else { "no" }
        );
    }

    // 4. Validate the best heuristic with the discrete-event simulator.
    let tree = build_structure(
        &platform,
        source,
        HeuristicKind::GrowTree,
        CommModel::OnePort,
        slice,
    )
    .unwrap();
    let spec = MessageSpec::new(100.0e6, slice); // 100 MB message in 1 MB slices
    let report = simulate_broadcast(
        &platform,
        &tree,
        &spec,
        &SimulationConfig::new(CommModel::OnePort),
    );
    println!(
        "\nsimulated broadcast of 100 MB: makespan {:.3} s, steady-state {:.2} slices/s \
         (analytic {:.2})",
        report.makespan,
        report.estimated_throughput(),
        steady_state_throughput(&platform, &tree, CommModel::OnePort, slice)
    );
}
