//! Broadcast on an Internet-like (Tiers-style) grid platform, the scenario of
//! the paper's Table 3: a WAN core, metropolitan networks and LAN leaves.
//! The example compares the topology-aware and LP-based heuristics to the
//! multiple-tree optimum on both 30-node and 65-node platforms, and reports
//! how the choice of the broadcast *source* (a WAN core node vs a LAN leaf)
//! changes the achievable throughput.
//!
//! ```text
//! cargo run --release --example grid_platform
//! ```

use broadcast_trees::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn evaluate(platform: &Platform, source: NodeId, slice: f64) {
    let optimal = optimal_throughput(platform, source, slice, OptimalMethod::CutGeneration)
        .expect("connected platform");
    println!(
        "  source {:<8} optimal {:>8.2} slices/s",
        platform.processor(source).name,
        optimal.throughput
    );
    for kind in [
        HeuristicKind::PruneDegree,
        HeuristicKind::GrowTree,
        HeuristicKind::LpGrow,
        HeuristicKind::Binomial,
    ] {
        let structure = build_structure_with_loads(
            platform,
            source,
            kind,
            CommModel::OnePort,
            slice,
            Some(&optimal),
        )
        .expect("heuristic succeeds");
        let tp = steady_state_throughput(platform, &structure, CommModel::OnePort, slice);
        println!(
            "    {:<24} {:>8.2} slices/s  ({:>5.1}% of optimal)",
            kind.label(),
            tp,
            100.0 * tp / optimal.throughput
        );
    }
}

fn main() {
    let slice = 1.0e6;
    for (label, config, seed) in [
        ("30-node Tiers platform", TiersConfig::paper_30(), 7u64),
        ("65-node Tiers platform", TiersConfig::paper_65(), 8u64),
    ] {
        let mut rng = StdRng::seed_from_u64(seed);
        let platform = tiers_platform(&config, &mut rng);
        println!(
            "\n{label}: {} nodes, {} links, density {:.3}",
            platform.node_count(),
            platform.edge_count(),
            platform.density()
        );
        // Broadcast from a WAN core node (node 0 is always a WAN node).
        evaluate(&platform, NodeId(0), slice);
        // Broadcast from the last LAN leaf: the tree must climb the hierarchy
        // first, so the optimal and heuristic throughputs both drop.
        let leaf = NodeId((platform.node_count() - 1) as u32);
        evaluate(&platform, leaf, slice);
    }
}
