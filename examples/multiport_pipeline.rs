//! One-port vs multi-port broadcasting (the paper's Section 3.2 / Figure 5
//! scenario), plus the effect of the slice size on the end-to-end time of a
//! finite message.
//!
//! The multi-port model lets a sender overlap the link occupations of its
//! outgoing messages (only the per-message overhead `send_u` serialises), so
//! wide trees become attractive again. The example also shows the classic
//! pipelining trade-off: large slices waste pipeline fill time, tiny slices
//! pay per-slice overheads (here modelled by a per-link latency).
//!
//! ```text
//! cargo run --release --example multiport_pipeline
//! ```

use broadcast_trees::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2005);
    // A 25-node random platform with a small per-link latency so that the
    // slice-size trade-off is visible.
    let config = RandomPlatformConfig {
        latency: 1.0e-3,
        ..RandomPlatformConfig::paper(25, 0.12)
    };
    let one_port = random_platform(&config, &mut rng);
    let multi_port = one_port.with_multiport_overheads(0.8, 1.0e6);
    let source = NodeId(0);
    let slice = 1.0e6;

    // --- one-port vs multi-port steady state -----------------------------
    let optimal = optimal_throughput(&one_port, source, slice, OptimalMethod::CutGeneration)
        .expect("connected platform");
    println!("one-port MTP optimum: {:.2} slices/s", optimal.throughput);
    println!(
        "\n{:<26} {:>12} {:>12}",
        "tree built for / eval under", "one-port", "multi-port"
    );
    for kind in [
        HeuristicKind::GrowTree,
        HeuristicKind::PruneDegree,
        HeuristicKind::Binomial,
    ] {
        let tree_one = build_structure(&one_port, source, kind, CommModel::OnePort, slice).unwrap();
        let tree_multi =
            build_structure(&multi_port, source, kind, CommModel::MultiPort, slice).unwrap();
        let tp_one = steady_state_throughput(&one_port, &tree_one, CommModel::OnePort, slice);
        let tp_multi =
            steady_state_throughput(&multi_port, &tree_multi, CommModel::MultiPort, slice);
        println!("{:<26} {:>12.2} {:>12.2}", kind.label(), tp_one, tp_multi);
    }
    println!(
        "\n(multi-port ratios above the one-port optimum are expected: the optimum is\n\
         computed under the stricter one-port rules, exactly as in the paper's Figure 5)"
    );

    // --- slice-size trade-off for a 200 MB message -----------------------
    let tree = build_structure(
        &one_port,
        source,
        HeuristicKind::GrowTree,
        CommModel::OnePort,
        slice,
    )
    .unwrap();
    println!("\nslice size vs completion time of a 200 MB broadcast (Grow Tree, one-port):");
    println!(
        "{:>12} {:>10} {:>16}",
        "slice (MB)", "slices", "completion (s)"
    );
    for &slice_mb in &[0.125f64, 0.5, 1.0, 4.0, 16.0, 64.0, 200.0] {
        let spec = MessageSpec::new(200.0e6, slice_mb * 1.0e6);
        let report = simulate_broadcast(
            &one_port,
            &tree,
            &spec,
            &SimulationConfig::new(CommModel::OnePort),
        );
        println!(
            "{:>12.3} {:>10} {:>16.3}",
            slice_mb,
            spec.slice_count(),
            report.makespan
        );
    }
    println!("\nmoderate slices win: huge slices lose the pipelining, tiny slices pay latency.");
}
