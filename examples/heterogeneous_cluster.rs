//! A hand-modelled heterogeneous cluster: two racks of fast machines behind
//! a slow inter-rack uplink, plus a handful of lab workstations on 100 Mb/s
//! Ethernet. The example shows why topology-aware broadcast trees matter:
//! the MPI-style binomial tree repeatedly crosses the slow links, while the
//! paper's heuristics relay through the fast racks.
//!
//! ```text
//! cargo run --release --example heterogeneous_cluster
//! ```

use broadcast_trees::prelude::*;

/// Builds the cluster: node 0 is the head node (broadcast source).
fn build_cluster() -> Platform {
    let gb = 1.0e9 / 8.0; // 1 Gb/s in bytes/s
    let fast = LinkCost::from_bandwidth(10.0 * gb); // intra-rack 10 Gb/s
    let uplink = LinkCost::from_bandwidth(gb); // rack uplink 1 Gb/s
    let ethernet = LinkCost::from_bandwidth(gb / 10.0); // workstations 100 Mb/s

    let mut b = Platform::builder();
    let head = b.add_processor("head");
    // Rack A: 6 nodes, full bisection inside the rack.
    let rack_a: Vec<NodeId> = (0..6)
        .map(|i| b.add_processor(format!("rackA{i}")))
        .collect();
    // Rack B: 6 nodes.
    let rack_b: Vec<NodeId> = (0..6)
        .map(|i| b.add_processor(format!("rackB{i}")))
        .collect();
    // Workstations: 4 nodes.
    let stations: Vec<NodeId> = (0..4).map(|i| b.add_processor(format!("ws{i}"))).collect();

    for rack in [&rack_a, &rack_b] {
        for i in 0..rack.len() {
            for j in (i + 1)..rack.len() {
                b.add_bidirectional_link(rack[i], rack[j], fast);
            }
        }
    }
    // Head node is in rack A's switch and uplinks to rack B.
    for &n in &rack_a {
        b.add_bidirectional_link(head, n, fast);
    }
    b.add_bidirectional_link(head, rack_b[0], uplink);
    b.add_bidirectional_link(rack_a[0], rack_b[1], uplink);
    // Workstations hang off the head node's Ethernet segment and off each other.
    for &w in &stations {
        b.add_bidirectional_link(head, w, ethernet);
    }
    for i in 0..stations.len() {
        for j in (i + 1)..stations.len() {
            b.add_bidirectional_link(stations[i], stations[j], ethernet);
        }
    }
    b.build()
}

fn main() {
    let platform = build_cluster();
    let source = NodeId(0);
    let slice = 4.0e6; // 4 MB slices
    println!(
        "cluster: {} machines, {} directed links",
        platform.node_count(),
        platform.edge_count()
    );

    let optimal = optimal_throughput(&platform, source, slice, OptimalMethod::CutGeneration)
        .expect("connected cluster");
    println!(
        "optimal MTP bound: {:.1} MB/s delivered to every machine\n",
        optimal.bandwidth(slice) / 1.0e6
    );

    println!(
        "{:<24} {:>14} {:>10} {:>14}",
        "heuristic", "steady MB/s", "relative", "100 MB bcast (s)"
    );
    for kind in [
        HeuristicKind::GrowTree,
        HeuristicKind::PruneDegree,
        HeuristicKind::LpGrow,
        HeuristicKind::Binomial,
    ] {
        let structure = build_structure(&platform, source, kind, CommModel::OnePort, slice)
            .expect("heuristic succeeds");
        let spec = MessageSpec::new(100.0e6, slice);
        let bandwidth = steady_state_bandwidth(&platform, &structure, CommModel::OnePort, &spec);
        let report = simulate_broadcast(
            &platform,
            &structure,
            &spec,
            &SimulationConfig::new(CommModel::OnePort),
        );
        println!(
            "{:<24} {:>14.1} {:>9.1}% {:>14.3}",
            kind.label(),
            bandwidth / 1.0e6,
            100.0 * steady_state_throughput(&platform, &structure, CommModel::OnePort, slice)
                / optimal.throughput,
            report.makespan
        );
    }

    // Where does the binomial tree lose? Count how many of its transfers
    // cross the slow Ethernet / uplink links.
    let binomial = build_structure(
        &platform,
        source,
        HeuristicKind::Binomial,
        CommModel::OnePort,
        slice,
    )
    .unwrap();
    let grow = build_structure(
        &platform,
        source,
        HeuristicKind::GrowTree,
        CommModel::OnePort,
        slice,
    )
    .unwrap();
    for (name, s) in [("binomial", &binomial), ("grow-tree", &grow)] {
        let slow_edges = s
            .edges()
            .iter()
            .filter(|&&e| platform.link_cost(e).bandwidth() < 0.9e9 / 8.0)
            .count();
        println!(
            "\n{name}: {} edges in the structure, {} of them on slow (<1 Gb/s) links",
            s.edge_count(),
            slow_edges
        );
    }
}
