//! Vendored subset of the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking API.
//!
//! Benchmarks compile and run with `cargo bench`, timing each closure with
//! `std::time::Instant` and reporting median, mean, min, max, and the
//! sample count over `sample_size` samples. There are no statistical
//! tests, plots, or baselines — this exists so the workspace's benches
//! stay buildable and give honest ballpark numbers in an environment that
//! cannot fetch the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Benchmark harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget; sampling stops early once exceeded.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
        }
    }
}

/// A named benchmark id: function name plus parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut bencher = Bencher {
            warm_up_time: self.criterion.warm_up_time,
            measurement_time: self.criterion.measurement_time,
            samples,
            durations: Vec::new(),
        };
        routine(&mut bencher, input);
        bencher.report(&id.to_string());
        self
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut bencher = Bencher {
            warm_up_time: self.criterion.warm_up_time,
            measurement_time: self.criterion.measurement_time,
            samples,
            durations: Vec::new(),
        };
        routine(&mut bencher);
        bencher.report(&id.into());
        self
    }

    /// Closes the group (parity with the real API; nothing to flush).
    pub fn finish(self) {}
}

/// Times a closure passed to [`Bencher::iter`].
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Benchmarks `routine`: warms up, then records `sample_size` timed
    /// samples (stopping early when the measurement budget is spent).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            std_black_box(routine());
        }
        self.durations.clear();
        let budget = Instant::now() + self.measurement_time;
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(routine());
            self.durations.push(start.elapsed());
            if Instant::now() > budget {
                break;
            }
        }
    }

    fn report(&mut self, label: &str) {
        println!("  {}", Self::stats_line(label, &mut self.durations));
    }

    /// The full stats line for a set of samples: median, mean, min, max,
    /// and the sample count. Median alone hides the spread; warm-vs-cold
    /// comparisons (the drift and warm-start bench groups) need min/max
    /// and `n` to tell a genuine shift from a noisy outlier.
    fn stats_line(label: &str, durations: &mut [Duration]) -> String {
        if durations.is_empty() {
            return format!("{label}: no samples recorded");
        }
        durations.sort_unstable();
        let n = durations.len();
        let median = durations[n / 2];
        let min = durations[0];
        let max = durations[n - 1];
        let mean = durations.iter().sum::<Duration>() / n as u32;
        format!("{label}: median {median:?} mean {mean:?} (min {min:?}, max {max:?}, n={n})")
    }
}

/// Declares a benchmark group; both the simple and the `name/config/targets`
/// forms of the real macro are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples_and_groups_run() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut group = c.benchmark_group("unit");
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("noop", 1), &1, |b, &x| {
            b.iter(|| {
                runs += 1;
                x + 1
            })
        });
        group.finish();
        assert!(runs >= 3, "expected warm-up plus 3 samples, got {runs}");
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("grow", 30).to_string(), "grow/30");
    }

    #[test]
    fn stats_line_reports_median_mean_min_max_and_count() {
        let mut durations = vec![
            Duration::from_millis(30),
            Duration::from_millis(10),
            Duration::from_millis(20),
        ];
        let line = Bencher::stats_line("case", &mut durations);
        assert_eq!(
            line,
            "case: median 20ms mean 20ms (min 10ms, max 30ms, n=3)"
        );
        let mut empty: Vec<Duration> = Vec::new();
        assert_eq!(
            Bencher::stats_line("case", &mut empty),
            "case: no samples recorded"
        );
    }
}
