//! Vendored subset of the [`rand`](https://crates.io/crates/rand) 0.8 API.
//!
//! The build environment of this workspace has no access to a crates
//! registry, so the few `rand` items the workspace uses are re-implemented
//! here, dependency-free and API-compatible with `rand 0.8`:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256\*\* generator seeded via
//!   SplitMix64 (`seed_from_u64`). It is **not** the same stream as the real
//!   `rand::rngs::StdRng` (which is ChaCha12), but every consumer in this
//!   workspace only relies on *determinism for a fixed seed*, not on a
//!   specific stream.
//! * [`Rng`] — `gen_range` over integer and float ranges, `gen_bool`.
//! * [`SeedableRng`] — `seed_from_u64` / `from_seed`.
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! Statistical quality: xoshiro256\*\* passes BigCrush; it is more than
//! adequate for platform generation and property tests. Cryptographic use is
//! out of scope, as it is for everything in this repository.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Core random-number generation: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a small seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (fixed-size byte array for [`StdRng`]).
    type Seed;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        next_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
#[inline]
fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that values of type `T` can be sampled from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Modulo with rejection of the biased tail keeps the
                // distribution exactly uniform.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return self.start + (v % span) as $ty;
                    }
                }
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                // Work on the u64 offset span so `lo..=<type>::MAX` cannot
                // overflow; only the full u64 range needs a direct draw.
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                let offset = (0u64..span + 1).sample_from(rng);
                lo + offset as $ty
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($ty:ty => $uty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = self.end.wrapping_sub(self.start) as $uty as u64;
                let offset = (0..span).sample_from(rng);
                self.start.wrapping_add(offset as $ty)
            }
        }
    )*};
}

impl_signed_range!(i64 => u64, i32 => u32, i16 => u16);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let v = self.start + next_f64(rng) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (self.start as f64..self.end as f64).sample_from(rng) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&i));
            let s = rng.gen_range(-10i32..-2);
            assert!((-10..-2).contains(&s));
        }
    }

    #[test]
    fn inclusive_ranges_reaching_type_max_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let b = rng.gen_range(250u8..=u8::MAX);
            assert!(b >= 250);
            let _ = rng.gen_range(0u64..=u64::MAX);
            let w = rng.gen_range(u64::MAX - 1..=u64::MAX);
            assert!(w >= u64::MAX - 1);
        }
        // The full u8 range must actually cover both endpoints eventually.
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..5000 {
            match rng.gen_range(0u8..=u8::MAX) {
                0 => lo_seen = true,
                u8::MAX => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
