//! Sequence utilities: shuffling and random choice on slices.

use crate::Rng;

/// Random operations on slices (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen reference, or `None` for an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn choose_returns_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([7u8].choose(&mut rng), Some(&7));
    }

    #[test]
    fn shuffle_of_singleton_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut v = [42];
        v.shuffle(&mut rng);
        assert_eq!(v, [42]);
    }
}
