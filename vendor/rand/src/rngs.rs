//! Concrete generators. Only [`StdRng`] is provided.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256\*\*.
///
/// Seeded from a `u64` via SplitMix64, exactly as recommended by the
/// xoshiro authors. The stream differs from the real `rand::rngs::StdRng`
/// (ChaCha12), but all workspace code depends only on seed-determinism.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is a fixed point of xoshiro; redirect it.
        if s == [0; 4] {
            return Self::seed_from_u64(0);
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_rejects_all_zero_state() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256** from the state {1, 2, 3, 4}
        // (computed from the public-domain reference implementation).
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = StdRng::from_seed(seed);
        assert_eq!(rng.next_u64(), 11520);
        assert_eq!(rng.next_u64(), 0);
        assert_eq!(rng.next_u64(), 1509978240);
        assert_eq!(rng.next_u64(), 1215971899390074240);
    }
}
