//! Vendored subset of the [`proptest`](https://crates.io/crates/proptest)
//! API, sufficient for this workspace's property tests.
//!
//! Differences from the real crate, by design:
//!
//! * **Deterministic**: every test derives its RNG seed from the test
//!   function's name and the case index (FNV-1a), so a failure reproduces on
//!   every run and on every machine — there is no persistence file and no
//!   environment-variable override to manage.
//! * **No shrinking**: a failing case panics with the generated inputs in
//!   the panic message (via `prop_assert!`'s formatted condition); the seed
//!   determinism makes re-running it trivial.
//! * **No macro-DSL strategies**: only the combinator subset used here —
//!   ranges, tuples, [`collection::vec`], [`Strategy::prop_map`],
//!   [`Strategy::prop_flat_map`], [`any`], and [`Just`].
//!
//! The public surface mirrors `proptest` closely enough that swapping the
//! real crate back in requires no source change in the tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod prelude;

#[doc(hidden)]
pub use rand::{Rng as __Rng, SeedableRng as __SeedableRng};

/// The RNG handed to strategies. Re-exported so generated tests can name it.
pub type TestRng = rand::rngs::StdRng;

/// Per-run configuration accepted by `#![proptest_config(..)]`.
///
/// Only `cases` is honoured; the other knobs of the real crate do not apply
/// to this no-shrinking implementation.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for parity with the real crate; ignored (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Derives the deterministic RNG for `(test name, case index)`.
#[doc(hidden)]
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    <TestRng as rand::SeedableRng>::seed_from_u64(hash ^ (u64::from(case) << 32 | u64::from(case)))
}

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, builds a dependent strategy from it with `f`, and
    /// generates from that strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, f64, f32);

macro_rules! impl_range_inclusive_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_inclusive_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "generate any value" strategy (see [`any`]).
pub trait Arbitrary {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                use rand::RngCore;
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_uint!(u64, u32, u16, u8, usize, i64, i32, i16, i8, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates any value of `T` (full-range integers, fair booleans).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Declares property tests. Subset of the real `proptest!` macro: an
/// optional `#![proptest_config(expr)]` header followed by `fn` items whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal recursion of [`proptest!`]; do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for __case in 0..config.cases {
                let mut __rng = $crate::test_rng(stringify!($name), __case);
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property (here: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (here: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (here: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable_across_calls() {
        use rand::RngCore;
        let a = crate::test_rng("some_test", 3).next_u64();
        let b = crate::test_rng("some_test", 3).next_u64();
        let c = crate::test_rng("some_test", 4).next_u64();
        let d = crate::test_rng("other_test", 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn combinators_compose() {
        let strategy = (2usize..6)
            .prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n).prop_map(move |v| (n, v)));
        let mut rng = crate::test_rng("combinators_compose", 0);
        for _ in 0..50 {
            let (n, v) = strategy.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself: patterns, multiple bindings, trailing commas.
        #[test]
        fn macro_accepts_the_supported_grammar(
            (a, b) in (0usize..10, 0usize..10),
            scale in 0.5f64..2.0,
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!((0.5..2.0).contains(&scale));
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(scale, 0.0);
        }

        #[test]
        fn any_generates_varied_values(x in any::<u64>(), flag in any::<bool>()) {
            // Smoke: the values are usable; variability is checked above.
            let _ = x.wrapping_add(u64::from(flag));
        }
    }
}
