//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};
use std::ops::{Range, RangeInclusive};

/// A length specification for [`vec`]: a fixed size or a size range.
pub trait SizeRange {
    /// Samples a concrete length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

/// Strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// described by `len` (a `usize`, a `Range<usize>`, or `RangeInclusive`).
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_the_size_range() {
        let mut rng = crate::test_rng("lengths_respect_the_size_range", 0);
        for _ in 0..100 {
            assert_eq!(vec(0u32..5, 7usize).generate(&mut rng).len(), 7);
            let v = vec(0u32..5, 2usize..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let w = vec(0u32..5, 1usize..=3).generate(&mut rng);
            assert!((1..=3).contains(&w.len()));
        }
    }
}
