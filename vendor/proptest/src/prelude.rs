//! One-import surface mirroring `proptest::prelude`.

pub use crate::{
    any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just, ProptestConfig,
    Strategy,
};
