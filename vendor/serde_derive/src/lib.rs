//! No-op derive macros for the vendored `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so that
//! persistence can be enabled later, but nothing in the tree actually
//! serializes today and the build environment cannot fetch the real `serde`.
//! These derives therefore expand to nothing: the types still compile with
//! `#[derive(Serialize, Deserialize)]` attributes in place, and swapping the
//! vendored crates for the real ones requires no source change.

use proc_macro::TokenStream;

/// Expands to nothing; accepts anything `#[derive(Serialize)]` accepts.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts anything `#[derive(Deserialize)]` accepts.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
