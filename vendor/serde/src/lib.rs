//! Vendored `serde` facade.
//!
//! Exposes `Serialize`/`Deserialize` as marker traits and re-exports the
//! no-op derives from the vendored `serde_derive`, so that workspace types
//! keep their `#[derive(Serialize, Deserialize)]` attributes without pulling
//! the real `serde` (unavailable: the build environment has no registry
//! access). No code in the workspace performs actual (de)serialization; the
//! day one does, this crate is replaced by the real `serde` with no source
//! changes elsewhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no methods; see crate docs).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no methods; see crate docs).
pub trait Deserialize<'de> {}
